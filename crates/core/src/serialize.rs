//! Compact binary persistence for [`SegmentedSet`].
//!
//! The segmented bitmap is an *offline*-built structure (the paper reports
//! 77.7 s to encode WebDocs); a database or search engine builds it once
//! and memory-maps or loads it at query time. Versions 3 and 4 are
//! designed for exactly that: every array a set needs at query time sits
//! at a 64-byte-aligned offset, so a corpus file can be `mmap`'d and
//! decoded with **zero per-set heap allocation**
//! ([`SegmentedSet::deserialize_mapped`]).
//!
//! ```text
//! v4 set block (all integers little-endian, offsets relative to set start)
//!
//!   0   magic        b"FSIA"                          4 bytes
//!   4   version      u8  (4)
//!   5   lane         u8  (8 or 16)
//!   6   log2_m       u8
//!   7   flags        u8  (bit0 = has packed tier, bit1 = wide seg meta,
//!                         bit2 = has container tier)
//!   8   n            u64
//!  16   summary_ones u64
//!  24   total_len    u64 (whole block, multiple of 64)
//!  32   section table: 9 x { offset u64, len u64 }
//!         [0] BITMAP    m/8 bytes
//!         [1] SUMMARY   one u64 word per 64 bitmap blocks
//!         [2] SEGMETA   packed (offset,size) entries, 4 or 8 bytes each
//!         [3] ELEMENTS  (n + PAD_LEN) x u32, sentinel tail included
//!         [4] PACKED    bitpacked residual stream (len 0 when absent)
//!         [5] CDIR      container directory, 2 u64 words per range
//!         [6] CVALUES   array-container payloads, sorted u16 values
//!         [7] CWORDS    bitmap-container payloads, 1024 u64 words each
//!         [8] CRUNS     run-container payloads, one u32 per run
//! 176   zero pad to 192
//! 192   sections, each 64-byte-aligned, zero padding between
//! ```
//!
//! Version 3 is the same layout with a 5-entry table (no container
//! sections) and a 128-byte header; [`SegmentedSet::serialize_v3`] still
//! writes it for migration corpora, and both the owned and the mapped
//! decoder accept it. Versions 1 and 2 (the flat `header | bitmap |
//! summary | sizes | elements` layout written by
//! [`SegmentedSet::serialize_v2`]) still decode on the owned path. The
//! compressed and container tiers are rebuilt from the decoded elements
//! on every owned decode, so legacy corpora gain them for free. The
//! mapped path is v3/v4- and little-endian-only: it reinterprets file
//! bytes in place and trusts section *content* (bitmap bits, element
//! values, packed words) after structural checks — the container sections
//! are the exception, fully validated by
//! [`crate::container`]'s tier check so a hostile directory can never
//! index a payload out of bounds — corruption elsewhere can only yield
//! wrong intersection counts, never out-of-bounds access.

use std::sync::Arc;

use crate::container::{self, ContainerTier};
use crate::error::BuildError;
use crate::mmap::{MappedFile, Section};
use crate::params::FesiaParams;
use crate::set::{PackedTier, SegMeta, SegmentedSet, PAD_LEN, PAD_SENTINEL};
use fesia_simd::bitpack;
use fesia_simd::mask::{summary_len, LaneWidth};
use fesia_simd::util::log2_pow2;

/// Format magic.
const MAGIC: [u8; 4] = *b"FSIA";
/// Current format version.
const VERSION: u8 = 4;
/// Previous sectioned layout (5-entry table, no container sections).
const VERSION_V3: u8 = 3;
/// Last version of the legacy flat layout.
const VERSION_V2: u8 = 2;

/// v3 fixed part: header (32) + section table (80) + pad (16); also the
/// first section's offset, so it fills exactly two cache lines.
const V3_HEADER_LEN: usize = 128;
/// v4 fixed part: header (32) + section table (144) + pad (16).
const V4_HEADER_LEN: usize = 192;
/// Prologue of a sectioned [`serialize_many`] buffer: count u64 + zero
/// pad, so the first set block starts 64-byte-aligned.
const MANY_PROLOGUE: usize = 64;

/// Set carries a packed residual tier (section 4 non-empty).
const FLAG_PACKED: u8 = 1;
/// Segment metadata entries are 8-byte (`offset << 32 | size`) rather
/// than the compact 4-byte (`offset << 8 | size`) form.
const FLAG_WIDE_META: u8 = 2;
/// Set carries a container tier (sections 5–8, v4 only).
const FLAG_CONTAINER: u8 = 4;

const SEC_BITMAP: usize = 0;
const SEC_SUMMARY: usize = 1;
const SEC_SEGMETA: usize = 2;
const SEC_ELEMENTS: usize = 3;
const SEC_PACKED: usize = 4;
/// Number of sections in a v3 table.
const SEC_COUNT_V3: usize = 5;
const SEC_CDIR: usize = 5;
const SEC_CVALUES: usize = 6;
const SEC_CWORDS: usize = 7;
const SEC_CRUNS: usize = 8;
/// Number of sections in a v4 table.
const SEC_COUNT: usize = 9;

/// Why a byte buffer could not be decoded into a [`SegmentedSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer too short for the declared layout.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Invalid header field (lane width or bitmap size).
    BadHeader,
    /// The decoded structure failed validation (corrupt or tampered data).
    Corrupt,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer too short"),
            DecodeError::BadMagic => write!(f, "not a FESIA segmented-set buffer"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadHeader => write!(f, "invalid header field"),
            DecodeError::Corrupt => write!(f, "structure failed validation"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn align64(x: u64) -> u64 {
    (x + 63) & !63
}

/// Byte length of each section for `set`, indexed by `SEC_*`. The
/// container lens are zero when the set carries no tier or when writing
/// the v3 layout (which has no container sections).
fn section_lens(set: &SegmentedSet, v4: bool) -> [u64; SEC_COUNT] {
    let (dlen, vlen, wlen, rlen) = match set.container() {
        Some(c) if v4 => {
            let (dir, values, words, runs) = c.sections();
            (
                dir.len() as u64 * 8,
                values.len() as u64 * 2,
                words.len() as u64 * 8,
                runs.len() as u64 * 4,
            )
        }
        _ => (0, 0, 0, 0),
    };
    [
        set.bitmap_bytes().len() as u64,
        (set.summary_words().len() * 8) as u64,
        match set.seg_meta() {
            SegMeta::Compact(v) => v.len() as u64 * 4,
            SegMeta::Wide(v) => v.len() as u64 * 8,
        },
        ((set.len() + PAD_LEN) * 4) as u64,
        set.packed().map_or(0, |p| p.stream_bytes() as u64),
        dlen,
        vlen,
        wlen,
        rlen,
    ]
}

/// Place the sections: each 64-byte-aligned, in table order, starting at
/// the version's header length. Returns the offsets and the (64-aligned)
/// total. v3 places (and writes) only the first [`SEC_COUNT_V3`] slots.
fn block_layout(lens: &[u64; SEC_COUNT], v4: bool) -> ([u64; SEC_COUNT], u64) {
    let mut offsets = [0u64; SEC_COUNT];
    let count = if v4 { SEC_COUNT } else { SEC_COUNT_V3 };
    let mut off = if v4 { V4_HEADER_LEN } else { V3_HEADER_LEN } as u64;
    for (slot, &len) in offsets.iter_mut().zip(lens).take(count) {
        *slot = off;
        off = align64(off + len);
    }
    (offsets, off)
}

impl SegmentedSet {
    /// Append the binary encoding of this set (current version) to `out`.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        self.serialize_versioned(out, true)
    }

    /// Append the previous (v3) sectioned encoding to `out` — kept for
    /// producing corpora older readers accept; it simply has no container
    /// sections, so the tier is rebuilt on owned decode and absent on
    /// mapped decode.
    pub fn serialize_v3_into(&self, out: &mut Vec<u8>) {
        self.serialize_versioned(out, false)
    }

    /// The previous (v3) sectioned encoding as a fresh buffer.
    pub fn serialize_v3(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.serialize_v3_into(&mut out);
        out
    }

    fn serialize_versioned(&self, out: &mut Vec<u8>, v4: bool) {
        let start = out.len();
        let lens = section_lens(self, v4);
        let (offsets, total) = block_layout(&lens, v4);
        let count = if v4 { SEC_COUNT } else { SEC_COUNT_V3 };
        out.reserve(total as usize);
        out.extend_from_slice(&MAGIC);
        out.push(if v4 { VERSION } else { VERSION_V3 });
        out.push(self.lane().bits() as u8);
        out.push(self.log2_m() as u8);
        let mut flags = 0u8;
        if self.packed().is_some() {
            flags |= FLAG_PACKED;
        }
        if matches!(self.seg_meta(), SegMeta::Wide(_)) {
            flags |= FLAG_WIDE_META;
        }
        if v4 && self.container().is_some() {
            flags |= FLAG_CONTAINER;
        }
        out.push(flags);
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.summary_ones().to_le_bytes());
        out.extend_from_slice(&total.to_le_bytes());
        for (off, len) in offsets.iter().zip(&lens).take(count) {
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.resize(start + offsets[SEC_BITMAP] as usize, 0);
        out.extend_from_slice(self.bitmap_bytes());
        out.resize(start + offsets[SEC_SUMMARY] as usize, 0);
        for &w in self.summary_words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.resize(start + offsets[SEC_SEGMETA] as usize, 0);
        match self.seg_meta() {
            SegMeta::Compact(v) => {
                for &e in v.iter() {
                    out.extend_from_slice(&e.to_le_bytes());
                }
            }
            SegMeta::Wide(v) => {
                for &e in v.iter() {
                    out.extend_from_slice(&e.to_le_bytes());
                }
            }
        }
        out.resize(start + offsets[SEC_ELEMENTS] as usize, 0);
        for &x in self.reordered_elements() {
            out.extend_from_slice(&x.to_le_bytes());
        }
        for _ in 0..PAD_LEN {
            out.extend_from_slice(&PAD_SENTINEL.to_le_bytes());
        }
        if let Some(p) = self.packed() {
            out.resize(start + offsets[SEC_PACKED] as usize, 0);
            for &w in p.words() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        if v4 {
            if let Some(c) = self.container() {
                let (dir, values, words, runs) = c.sections();
                out.resize(start + offsets[SEC_CDIR] as usize, 0);
                for &w in dir {
                    out.extend_from_slice(&w.to_le_bytes());
                }
                out.resize(start + offsets[SEC_CVALUES] as usize, 0);
                for &v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.resize(start + offsets[SEC_CWORDS] as usize, 0);
                for &w in words {
                    out.extend_from_slice(&w.to_le_bytes());
                }
                out.resize(start + offsets[SEC_CRUNS] as usize, 0);
                for &r in runs {
                    out.extend_from_slice(&r.to_le_bytes());
                }
            }
        }
        out.resize(start + total as usize, 0);
    }

    /// The binary encoding as a fresh buffer.
    ///
    /// ```
    /// use fesia_core::{FesiaParams, SegmentedSet};
    /// let s = SegmentedSet::build(&[7, 11, 42], &FesiaParams::auto()).unwrap();
    /// let bytes = s.serialize();
    /// let (back, used) = SegmentedSet::deserialize(&bytes).unwrap();
    /// assert_eq!(used, bytes.len());
    /// assert!(back.contains(42));
    /// ```
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.serialize_into(&mut out);
        out
    }

    /// Exact length of [`SegmentedSet::serialize`]'s output (a multiple
    /// of 64).
    pub fn serialized_len(&self) -> usize {
        block_layout(&section_lens(self, true), true).1 as usize
    }

    /// Append the legacy version-2 flat encoding to `out` — kept for
    /// migration tests and for producing corpora older readers accept.
    pub fn serialize_v2_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(VERSION_V2);
        out.push(self.lane().bits() as u8);
        out.push(self.log2_m() as u8);
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(self.bitmap_bytes());
        for &w in self.summary_words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for i in 0..self.num_segments() {
            out.extend_from_slice(&(self.seg_size(i) as u32).to_le_bytes());
        }
        for &x in self.reordered_elements() {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// The legacy version-2 encoding as a fresh buffer.
    pub fn serialize_v2(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.serialize_v2_into(&mut out);
        out
    }

    /// Decode a buffer produced by [`SegmentedSet::serialize`] (any
    /// supported version); returns the set and the number of bytes
    /// consumed (buffers may be concatenated).
    pub fn deserialize(bytes: &[u8]) -> Result<(SegmentedSet, usize), DecodeError> {
        if bytes.len() < 15 {
            return Err(DecodeError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        match bytes[4] {
            v @ 1..=VERSION_V2 => deserialize_legacy(bytes, v),
            VERSION_V3 | VERSION => deserialize_sectioned(bytes),
            v => Err(DecodeError::BadVersion(v)),
        }
    }

    /// Decode the v3/v4 set block at byte offset `at` of a mapped corpus,
    /// *without copying or allocating*: every array of the returned set is
    /// a [`Section`] view into the mapping, kept alive by the `Arc`.
    ///
    /// Structural metadata (header, section table, segment offsets,
    /// sentinel tail, summary popcount) is fully checked in
    /// `O(#segments)`; section **content** is trusted, so a corrupted
    /// bitmap or element array yields wrong intersection results but
    /// never unsafety. The v4 container sections are the exception: a
    /// hostile directory could otherwise index payloads out of bounds, so
    /// they pass the full [`crate::container`] tier validation (one
    /// allocation-free pass) before being viewed. Only version-3/4,
    /// little-endian buffers qualify — anything else must go through the
    /// owned [`SegmentedSet::deserialize`]. v3 blocks carry no container
    /// sections, so mapped v3 sets simply have no container tier.
    pub fn deserialize_mapped(
        file: &Arc<MappedFile>,
        at: usize,
    ) -> Result<(SegmentedSet, usize), DecodeError> {
        if cfg!(target_endian = "big") {
            // Mapped views reinterpret little-endian bytes in place.
            return Err(DecodeError::BadHeader);
        }
        let all = file.bytes();
        if at > all.len() {
            return Err(DecodeError::Truncated);
        }
        let bytes = &all[at..];
        if bytes.len() < 15 {
            return Err(DecodeError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        if bytes[4] != VERSION_V3 && bytes[4] != VERSION {
            return Err(DecodeError::BadVersion(bytes[4]));
        }
        let h = parse_header(bytes)?;
        // Every section offset is a multiple of 64, so one base check
        // aligns every typed view (u64 needs 8, u32 needs 4).
        if !(bytes.as_ptr() as usize).is_multiple_of(8) {
            return Err(DecodeError::Corrupt);
        }

        let (soff, slen) = h.sections[SEC_SUMMARY];
        // SAFETY: bounds and alignment established above.
        let summary: &[u64] = unsafe { sec_slice(bytes, soff, slen) };
        if summary.iter().map(|w| w.count_ones() as u64).sum::<u64>() != h.summary_ones {
            return Err(DecodeError::Corrupt);
        }

        // Segment entries must be exact prefix sums of their sizes ending
        // at n: after this, every kernel-visible (offset, size) is in
        // bounds of the elements section.
        let wide = h.flags & FLAG_WIDE_META != 0;
        let (moff, mlen) = h.sections[SEC_SEGMETA];
        let mut acc = 0u64;
        if wide {
            // SAFETY: bounds and alignment established above.
            let entries: &[u64] = unsafe { sec_slice(bytes, moff, mlen) };
            for &e in entries {
                if e >> 32 != acc {
                    return Err(DecodeError::Corrupt);
                }
                acc += e & 0xFFFF_FFFF;
            }
        } else {
            // SAFETY: bounds and alignment established above.
            let entries: &[u32] = unsafe { sec_slice(bytes, moff, mlen) };
            for &e in entries {
                if u64::from(e >> 8) != acc {
                    return Err(DecodeError::Corrupt);
                }
                acc += u64::from(e & 0xFF);
            }
        }
        if acc != h.n as u64 {
            return Err(DecodeError::Corrupt);
        }

        // The kernels' over-read contract needs the sentinel tail intact.
        let (eoff, elen) = h.sections[SEC_ELEMENTS];
        // SAFETY: bounds and alignment established above.
        let elems: &[u32] = unsafe { sec_slice(bytes, eoff, elen) };
        if elems[h.n..].iter().any(|&x| x != PAD_SENTINEL) {
            return Err(DecodeError::Corrupt);
        }

        let base = bytes.as_ptr();
        let (boff, blen) = h.sections[SEC_BITMAP];
        // SAFETY (all views below): parse_v3_header bounds every section
        // within the mapping and the base alignment check covers every
        // element type; the Arc keeps the mapping alive.
        let bitmap = unsafe { Section::from_mapped(base.add(boff), blen, Arc::clone(file)) };
        let summary = unsafe {
            Section::from_mapped(base.add(soff) as *const u64, slen / 8, Arc::clone(file))
        };
        let seg_meta = if wide {
            SegMeta::Wide(unsafe {
                Section::from_mapped(base.add(moff) as *const u64, mlen / 8, Arc::clone(file))
            })
        } else {
            SegMeta::Compact(unsafe {
                Section::from_mapped(base.add(moff) as *const u32, mlen / 4, Arc::clone(file))
            })
        };
        let reordered = unsafe {
            Section::from_mapped(base.add(eoff) as *const u32, elen / 4, Arc::clone(file))
        };
        let packed = if h.flags & FLAG_PACKED != 0 {
            let (poff, plen) = h.sections[SEC_PACKED];
            let width = 32 - h.log2_m + log2_pow2(h.lane.bits());
            let words = unsafe {
                Section::from_mapped(base.add(poff) as *const u64, plen / 8, Arc::clone(file))
            };
            Some(PackedTier::from_section(words, width))
        } else {
            None
        };
        let container = if h.flags & FLAG_CONTAINER != 0 {
            let (doff, dlen) = h.sections[SEC_CDIR];
            let (voff, vlen) = h.sections[SEC_CVALUES];
            let (woff, wlen) = h.sections[SEC_CWORDS];
            let (roff, rlen) = h.sections[SEC_CRUNS];
            // SAFETY: bounds and alignment established above.
            let dir: &[u64] = unsafe { sec_slice(bytes, doff, dlen) };
            let values: &[u16] = unsafe { sec_slice(bytes, voff, vlen) };
            let words: &[u64] = unsafe { sec_slice(bytes, woff, wlen) };
            let runs: &[u32] = unsafe { sec_slice(bytes, roff, rlen) };
            // The directory's offsets index the payload sections, so a
            // hostile one must fail here, not at query time.
            if container::validate_tier(dir, values, words, runs, h.n).is_none() {
                return Err(DecodeError::Corrupt);
            }
            // SAFETY: as for the other sections.
            Some(ContainerTier::from_parts(
                unsafe {
                    Section::from_mapped(base.add(doff) as *const u64, dlen / 8, Arc::clone(file))
                },
                unsafe {
                    Section::from_mapped(base.add(voff) as *const u16, vlen / 2, Arc::clone(file))
                },
                unsafe {
                    Section::from_mapped(base.add(woff) as *const u64, wlen / 8, Arc::clone(file))
                },
                unsafe {
                    Section::from_mapped(base.add(roff) as *const u32, rlen / 4, Arc::clone(file))
                },
            ))
        } else {
            None
        };
        let set = SegmentedSet::from_sections(
            bitmap,
            summary,
            h.summary_ones,
            seg_meta,
            reordered,
            packed,
            container,
            h.n,
            h.log2_m,
            h.lane,
        );
        Ok((set, h.total_len))
    }
}

/// Fully parsed and structurally checked v3/v4 fixed header.
struct Header {
    lane: LaneWidth,
    log2_m: u32,
    flags: u8,
    n: usize,
    summary_ones: u64,
    total_len: usize,
    /// `(offset, len)` in bytes relative to the set start, by `SEC_*`.
    /// The container slots are `(0, 0)` for v3 blocks.
    sections: [(usize, usize); SEC_COUNT],
}

/// Parse and check the v3/v4 header and section table of the block
/// starting at `bytes[0]` (magic and version already verified by the
/// caller). Every non-container section length must equal the exact value
/// the header fields imply; the container sections' lengths are
/// data-dependent, so they are checked for element-size multiples and
/// bounds here and for exact consumption by the tier validation. Every
/// offset must be 64-byte-aligned and fit inside `total_len` — so nothing
/// downstream needs bounds arithmetic.
fn parse_header(bytes: &[u8]) -> Result<Header, DecodeError> {
    debug_assert!(bytes[0..4] == MAGIC && (bytes[4] == VERSION_V3 || bytes[4] == VERSION));
    let v4 = bytes[4] == VERSION;
    let header_len = if v4 { V4_HEADER_LEN } else { V3_HEADER_LEN };
    if bytes.len() < header_len {
        return Err(DecodeError::Truncated);
    }
    let lane = match bytes[5] {
        8 => LaneWidth::U8,
        16 => LaneWidth::U16,
        _ => return Err(DecodeError::BadHeader),
    };
    let log2_m = bytes[6] as u32;
    if !(9..=32).contains(&log2_m) {
        // m below 512 bits or beyond the hash range is never produced.
        return Err(DecodeError::BadHeader);
    }
    let flags = bytes[7];
    let known = if v4 {
        FLAG_PACKED | FLAG_WIDE_META | FLAG_CONTAINER
    } else {
        FLAG_PACKED | FLAG_WIDE_META
    };
    if flags & !known != 0 {
        return Err(DecodeError::BadHeader);
    }
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("checked"));
    let n = usize::try_from(u64_at(8)).map_err(|_| DecodeError::Corrupt)?;
    let summary_ones = u64_at(16);
    let total_len = usize::try_from(u64_at(24)).map_err(|_| DecodeError::Corrupt)?;
    if total_len % 64 != 0 || total_len < header_len {
        return Err(DecodeError::Corrupt);
    }
    if bytes.len() < total_len {
        return Err(DecodeError::Truncated);
    }
    let m_bytes = (1usize << log2_m) / 8;
    let segs = (1usize << log2_m) / lane.bits();
    let meta_entry: u128 = if flags & FLAG_WIDE_META != 0 { 8 } else { 4 };
    let packed_len: u128 = if flags & FLAG_PACKED != 0 {
        let width = 32 - log2_m + log2_pow2(lane.bits());
        if width > bitpack::MAX_WIDTH {
            // The builder's gates never pack such sets, so the flag lies.
            return Err(DecodeError::Corrupt);
        }
        // required_words(n, width) * 8, in u128 because n is untrusted.
        ((n as u128 * u128::from(width)).div_ceil(64) + 1) * 8
    } else {
        0
    };
    let expected: [u128; SEC_COUNT_V3] = [
        m_bytes as u128,
        (summary_len(m_bytes) * 8) as u128,
        segs as u128 * meta_entry,
        (n as u128 + PAD_LEN as u128) * 4,
        packed_len,
    ];
    let sec_count = if v4 { SEC_COUNT } else { SEC_COUNT_V3 };
    let mut sections = [(0usize, 0usize); SEC_COUNT];
    for (i, slot) in sections.iter_mut().enumerate().take(sec_count) {
        let off64 = u64_at(32 + i * 16);
        let len64 = u64_at(32 + i * 16 + 8);
        if i < SEC_COUNT_V3 && u128::from(len64) != expected[i] {
            return Err(DecodeError::Corrupt);
        }
        let off = usize::try_from(off64).map_err(|_| DecodeError::Corrupt)?;
        let len = usize::try_from(len64).map_err(|_| DecodeError::Corrupt)?;
        if off % 64 != 0 || off < header_len {
            return Err(DecodeError::Corrupt);
        }
        match off.checked_add(len) {
            Some(end) if end <= total_len => {}
            _ => return Err(DecodeError::Corrupt),
        }
        *slot = (off, len);
    }
    if v4 {
        let (dlen, vlen, wlen, rlen) = (
            sections[SEC_CDIR].1,
            sections[SEC_CVALUES].1,
            sections[SEC_CWORDS].1,
            sections[SEC_CRUNS].1,
        );
        if flags & FLAG_CONTAINER != 0 {
            // The directory has two u64 words per range, at most one range
            // per 65536-value window; payload sections must hold whole
            // elements (bitmap payloads whole 8 KiB blocks). Exact
            // consumption is the tier validation's job.
            if dlen == 0
                || !dlen.is_multiple_of(16)
                || dlen / 16 > 1 << 16
                || !vlen.is_multiple_of(2)
                || !wlen.is_multiple_of(container::WORDS_PER_RANGE * 8)
                || !rlen.is_multiple_of(4)
            {
                return Err(DecodeError::Corrupt);
            }
        } else if dlen | vlen | wlen | rlen != 0 {
            return Err(DecodeError::Corrupt);
        }
    }
    Ok(Header {
        lane,
        log2_m,
        flags,
        n,
        summary_ones,
        total_len,
        sections,
    })
}

/// View a section of `bytes` as a typed slice.
///
/// # Safety
/// `off..off + len_bytes` must be in bounds of `bytes` and the absolute
/// address of `bytes[off]` must be aligned for `T`.
unsafe fn sec_slice<T>(bytes: &[u8], off: usize, len_bytes: usize) -> &[T] {
    std::slice::from_raw_parts(
        bytes.as_ptr().add(off) as *const T,
        len_bytes / std::mem::size_of::<T>(),
    )
}

/// Owned decode of a v3/v4 block: full validation via
/// `SegmentedSet::from_decoded_parts` (which also rebuilds the packed and
/// container tiers from the decoded elements — stored tier bytes are
/// never trusted on this path).
fn deserialize_sectioned(bytes: &[u8]) -> Result<(SegmentedSet, usize), DecodeError> {
    let h = parse_header(bytes)?;
    let (boff, blen) = h.sections[SEC_BITMAP];
    let bitmap = bytes[boff..boff + blen].to_vec();
    let (soff, slen) = h.sections[SEC_SUMMARY];
    let summary: Vec<u64> = bytes[soff..soff + slen]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("checked")))
        .collect();
    if summary.iter().map(|w| w.count_ones() as u64).sum::<u64>() != h.summary_ones {
        return Err(DecodeError::Corrupt);
    }
    let (moff, mlen) = h.sections[SEC_SEGMETA];
    // Only the size halves matter: offsets are re-derived (and checked)
    // as prefix sums by from_decoded_parts.
    let sizes: Vec<u32> = if h.flags & FLAG_WIDE_META != 0 {
        bytes[moff..moff + mlen]
            .chunks_exact(8)
            .map(|c| (u64::from_le_bytes(c.try_into().expect("checked")) & 0xFFFF_FFFF) as u32)
            .collect()
    } else {
        bytes[moff..moff + mlen]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("checked")) & 0xFF)
            .collect()
    };
    let (eoff, _) = h.sections[SEC_ELEMENTS];
    let reordered: Vec<u32> = bytes[eoff..eoff + h.n * 4]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("checked")))
        .collect();
    let set =
        SegmentedSet::from_decoded_parts(bitmap, Some(summary), sizes, reordered, h.log2_m, h.lane)
            .ok_or(DecodeError::Corrupt)?;
    Ok((set, h.total_len))
}

/// Owned decode of the legacy v1/v2 flat layout.
fn deserialize_legacy(bytes: &[u8], version: u8) -> Result<(SegmentedSet, usize), DecodeError> {
    let need = |n: usize, at: usize| {
        if bytes.len() < at + n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    };
    let lane = match bytes[5] {
        8 => LaneWidth::U8,
        16 => LaneWidth::U16,
        _ => return Err(DecodeError::BadHeader),
    };
    let log2_m = bytes[6] as u32;
    if !(9..=32).contains(&log2_m) {
        return Err(DecodeError::BadHeader);
    }
    let n = u64::from_le_bytes(bytes[7..15].try_into().expect("checked")) as usize;
    let m_bytes = (1usize << log2_m) / 8;
    let segs = (1usize << log2_m) / lane.bits();
    let mut at = 15;
    need(m_bytes, at)?;
    let bitmap = bytes[at..at + m_bytes].to_vec();
    at += m_bytes;
    let summary = if version >= 2 {
        let words = summary_len(m_bytes);
        need(words * 8, at)?;
        let s: Vec<u64> = (0..words)
            .map(|i| {
                u64::from_le_bytes(
                    bytes[at + i * 8..at + i * 8 + 8]
                        .try_into()
                        .expect("checked"),
                )
            })
            .collect();
        at += words * 8;
        Some(s)
    } else {
        None
    };
    need(segs * 4, at)?;
    let sizes: Vec<u32> = (0..segs)
        .map(|i| {
            u32::from_le_bytes(
                bytes[at + i * 4..at + i * 4 + 4]
                    .try_into()
                    .expect("checked"),
            )
        })
        .collect();
    at += segs * 4;
    if sizes.iter().map(|&s| s as u64).sum::<u64>() != n as u64 {
        return Err(DecodeError::Corrupt);
    }
    need(n * 4, at)?;
    let reordered: Vec<u32> = (0..n)
        .map(|i| {
            u32::from_le_bytes(
                bytes[at + i * 4..at + i * 4 + 4]
                    .try_into()
                    .expect("checked"),
            )
        })
        .collect();
    at += n * 4;

    let set = SegmentedSet::from_decoded_parts(bitmap, summary, sizes, reordered, log2_m, lane)
        .ok_or(DecodeError::Corrupt)?;
    Ok((set, at))
}

/// Convenience: serialize a whole collection (e.g. the per-term encodings
/// of an inverted index) into one buffer. The v3 framing (count word
/// padded to 64 bytes, then 64-aligned set blocks) keeps every section of
/// every set aligned, so the buffer is mmap-ready as written.
pub fn serialize_many<S: std::borrow::Borrow<SegmentedSet>>(sets: &[S]) -> Vec<u8> {
    let total: usize = sets.iter().map(|s| s.borrow().serialized_len()).sum();
    let mut out = Vec::with_capacity(total + MANY_PROLOGUE);
    out.extend_from_slice(&(sets.len() as u64).to_le_bytes());
    out.resize(MANY_PROLOGUE, 0);
    for s in sets {
        s.borrow().serialize_into(&mut out);
    }
    out
}

/// Where a many-buffer's first set block starts, by sniffing the framing:
/// legacy buffers put a v1/v2 set header right after the count.
fn many_first_set_offset(bytes: &[u8]) -> usize {
    if bytes.len() >= 13 && bytes[8..12] == MAGIC && (1..=VERSION_V2).contains(&bytes[12]) {
        8
    } else {
        MANY_PROLOGUE
    }
}

/// Decode a buffer produced by [`serialize_many`] (current or legacy
/// framing) on the owned path.
pub fn deserialize_many(bytes: &[u8]) -> Result<Vec<SegmentedSet>, DecodeError> {
    if bytes.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let count = u64::from_le_bytes(bytes[..8].try_into().expect("checked"));
    if count == 0 {
        return Ok(Vec::new());
    }
    let start = many_first_set_offset(bytes);
    if bytes.len() < start {
        return Err(DecodeError::Truncated);
    }
    // The count field is untrusted input: cap it by what the remaining
    // bytes could possibly hold (every encoded set takes at least a
    // 15-byte header) before sizing any allocation from it. A hostile
    // 8-byte count would otherwise drive `Vec::with_capacity` to abort
    // or overcommit.
    const MIN_SET_ENCODING: usize = 15;
    if count > ((bytes.len() - start) / MIN_SET_ENCODING) as u64 {
        return Err(DecodeError::Truncated);
    }
    let count = count as usize;
    let mut at = start;
    let mut sets = Vec::with_capacity(count);
    for _ in 0..count {
        let (set, used) = SegmentedSet::deserialize(&bytes[at..])?;
        at += used;
        sets.push(set);
    }
    Ok(sets)
}

/// Decode a mapped corpus produced by [`serialize_many`] with **zero
/// per-set allocation**: each returned set's arrays view the mapping
/// directly (see [`SegmentedSet::deserialize_mapped`]). Only the
/// sectioned (v3/v4) framing qualifies; legacy buffers return
/// [`DecodeError::BadVersion`] and must use the owned [`deserialize_many`].
pub fn deserialize_many_mapped(file: &Arc<MappedFile>) -> Result<Vec<SegmentedSet>, DecodeError> {
    let bytes = file.bytes();
    if bytes.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let count = u64::from_le_bytes(bytes[..8].try_into().expect("checked"));
    if count == 0 {
        return Ok(Vec::new());
    }
    if many_first_set_offset(bytes) != MANY_PROLOGUE {
        return Err(DecodeError::BadVersion(bytes[12]));
    }
    if bytes.len() < MANY_PROLOGUE {
        return Err(DecodeError::Truncated);
    }
    // Untrusted count: every sectioned set block is at least a (v3)
    // header long.
    if count > ((bytes.len() - MANY_PROLOGUE) / V3_HEADER_LEN) as u64 {
        return Err(DecodeError::Truncated);
    }
    let count = count as usize;
    let mut at = MANY_PROLOGUE;
    let mut sets = Vec::with_capacity(count);
    for _ in 0..count {
        let (set, used) = SegmentedSet::deserialize_mapped(file, at)?;
        at += used;
        sets.push(set);
    }
    Ok(sets)
}

/// Rebuild a set from an already-sorted slice with an explicit bitmap size
/// — used by tests that need a specific (m, s) combination.
pub fn build_with_bits(
    sorted: &[u32],
    bits_per_element: f64,
    lane: LaneWidth,
) -> Result<SegmentedSet, BuildError> {
    SegmentedSet::build(
        sorted,
        &FesiaParams::auto()
            .with_bits_per_element(bits_per_element)
            .with_segment(lane),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::intersect_count;

    fn sample_set(n: usize, seed: u64) -> SegmentedSet {
        let mut state = seed | 1;
        let mut vals = std::collections::BTreeSet::new();
        while vals.len() < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            vals.insert((state % 1_000_000) as u32);
        }
        let v: Vec<u32> = vals.into_iter().collect();
        SegmentedSet::build(&v, &FesiaParams::auto()).unwrap()
    }

    fn assert_same_set(back: &SegmentedSet, set: &SegmentedSet) {
        assert_eq!(back.len(), set.len());
        assert_eq!(back.bitmap_bytes(), set.bitmap_bytes());
        assert_eq!(back.summary_words(), set.summary_words());
        assert_eq!(back.reordered_elements(), set.reordered_elements());
        assert_eq!(back.packed_width(), set.packed_width());
        if let (Some(a), Some(b)) = (back.packed(), set.packed()) {
            assert_eq!(a.words(), b.words());
        }
        if let (Some(a), Some(b)) = (back.container(), set.container()) {
            assert_eq!(a.sections().0, b.sections().0, "container directory");
            assert_eq!(a.stats(), b.stats());
        }
        // Behavioral equality: intersects identically.
        assert_eq!(intersect_count(set, back), set.len());
    }

    #[test]
    fn round_trip_preserves_everything() {
        for n in [0usize, 1, 100, 5_000] {
            let set = sample_set(n, 42 + n as u64);
            let bytes = set.serialize();
            assert_eq!(bytes.len(), set.serialized_len());
            assert_eq!(bytes.len() % 64, 0, "v4 blocks are 64-byte multiples");
            let (back, used) = SegmentedSet::deserialize(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert!(back.validate());
            assert_same_set(&back, &set);
        }
    }

    #[test]
    fn v2_buffers_decode_and_gain_the_packed_tier() {
        // A legacy buffer never stored a tier; decoding must rebuild the
        // exact tier a fresh build carries.
        for n in [0usize, 100, 5_000] {
            let set = sample_set(n, 77 + n as u64);
            let bytes = set.serialize_v2();
            let (back, used) = SegmentedSet::deserialize(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert!(back.validate());
            assert_same_set(&back, &set);
        }
    }

    #[test]
    fn v3_buffers_decode_on_both_paths() {
        // The previous sectioned layout must keep decoding: owned decode
        // rebuilds the container tier, mapped decode simply carries none.
        let set = sample_set(5_000, 55);
        assert!(set.container().is_some(), "sample is big enough for a tier");
        let v3 = set.serialize_v3();
        assert_eq!(v3[4], VERSION_V3);
        let (back, used) = SegmentedSet::deserialize(&v3).unwrap();
        assert_eq!(used, v3.len());
        assert!(back.validate());
        assert_same_set(&back, &set);
        assert!(back.container().is_some(), "owned decode rebuilds the tier");

        let mut buf = Vec::new();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.resize(MANY_PROLOGUE, 0);
        set.serialize_v3_into(&mut buf);
        let f = Arc::new(MappedFile::from_bytes(buf));
        let mapped = deserialize_many_mapped(&f).unwrap();
        assert_eq!(mapped.len(), 1);
        assert!(mapped[0].container().is_none(), "v3 blocks carry no tier");
        assert!(mapped[0].validate());
        assert_eq!(intersect_count(&mapped[0], &set), set.len());
    }

    #[test]
    fn v4_round_trip_preserves_the_container_tier() {
        let set = sample_set(20_000, 91);
        let stats = set.container().expect("tier built").stats();
        let bytes = set.serialize();
        assert_eq!(bytes[4], VERSION);
        assert_ne!(bytes[7] & FLAG_CONTAINER, 0);
        let (back, _) = SegmentedSet::deserialize(&bytes).unwrap();
        assert_eq!(back.container().unwrap().stats(), stats);

        // Mapped: the tier views the file, owning zero heap bytes.
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.resize(MANY_PROLOGUE, 0);
        buf.extend_from_slice(&bytes);
        let f = Arc::new(MappedFile::from_bytes(buf));
        let mapped = deserialize_many_mapped(&f).unwrap();
        let tier = mapped[0].container().expect("mapped tier");
        assert_eq!(tier.stats(), stats);
        assert_eq!(tier.heap_bytes(), 0, "mapped tier owns no heap");
        assert!(mapped[0].validate());
    }

    #[test]
    fn mapped_decode_rejects_hostile_container_sections() {
        let set = sample_set(20_000, 93);
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.resize(MANY_PROLOGUE, 0);
        set.serialize_into(&mut buf);
        let aligned = |b: &[u8]| (b.as_ptr() as usize).is_multiple_of(8);
        let table_at = |i: usize| MANY_PROLOGUE + 32 + i * 16;

        // A corrupted directory word (kind tag set to an unknown value)
        // must fail the tier validation, not panic at query time.
        let doff = u64::from_le_bytes(
            buf[table_at(SEC_CDIR)..table_at(SEC_CDIR) + 8]
                .try_into()
                .unwrap(),
        ) as usize;
        let mut bad = buf.clone();
        bad[MANY_PROLOGUE + doff + 2] = 0x7F; // kind byte of entry 0
        let f = Arc::new(MappedFile::from_bytes(bad));
        if aligned(f.bytes()) {
            assert_eq!(
                deserialize_many_mapped(&f).unwrap_err(),
                DecodeError::Corrupt
            );
        }

        // A directory length that is not a whole number of entries.
        let mut bad = buf.clone();
        bad[table_at(SEC_CDIR) + 8] ^= 0x08;
        let f = Arc::new(MappedFile::from_bytes(bad));
        if aligned(f.bytes()) {
            assert_eq!(
                deserialize_many_mapped(&f).unwrap_err(),
                DecodeError::Corrupt
            );
        }

        // Container sections present without the flag.
        let mut bad = buf.clone();
        bad[MANY_PROLOGUE + 7] &= !FLAG_CONTAINER;
        let f = Arc::new(MappedFile::from_bytes(bad));
        if aligned(f.bytes()) {
            assert_eq!(
                deserialize_many_mapped(&f).unwrap_err(),
                DecodeError::Corrupt
            );
        }
    }

    #[test]
    fn concatenated_buffers_decode_in_sequence() {
        let a = sample_set(200, 1);
        let b = sample_set(300, 2);
        let many = serialize_many(&[a.clone(), b.clone()]);
        let back = deserialize_many(&many).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].reordered_elements(), a.reordered_elements());
        assert_eq!(back[1].reordered_elements(), b.reordered_elements());
        assert!(deserialize_many(&serialize_many::<SegmentedSet>(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn legacy_many_framing_still_decodes() {
        let a = sample_set(200, 21);
        let b = sample_set(300, 22);
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&2u64.to_le_bytes());
        a.serialize_v2_into(&mut legacy);
        b.serialize_v2_into(&mut legacy);
        let back = deserialize_many(&legacy).unwrap();
        assert_eq!(back.len(), 2);
        assert_same_set(&back[0], &a);
        assert_same_set(&back[1], &b);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            SegmentedSet::deserialize(b"FSIA").unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            SegmentedSet::deserialize(&[0u8; 64]).unwrap_err(),
            DecodeError::BadMagic
        );
        let mut bytes = sample_set(100, 3).serialize();
        bytes[4] = 99;
        assert_eq!(
            SegmentedSet::deserialize(&bytes).unwrap_err(),
            DecodeError::BadVersion(99)
        );
    }

    #[test]
    fn rejects_tampered_payload() {
        let set = sample_set(500, 7);
        // v4: the bitmap section starts right after the fixed header.
        let mut bytes = set.serialize();
        bytes[V4_HEADER_LEN + 3] ^= 0xFF;
        assert_eq!(
            SegmentedSet::deserialize(&bytes).unwrap_err(),
            DecodeError::Corrupt
        );
        // v2: same flip at the legacy bitmap offset.
        let mut bytes = set.serialize_v2();
        bytes[15 + 3] ^= 0xFF;
        assert_eq!(
            SegmentedSet::deserialize(&bytes).unwrap_err(),
            DecodeError::Corrupt
        );
    }

    #[test]
    fn version_1_buffers_still_decode() {
        // Down-convert a v2 buffer by hand: drop the summary words and
        // rewrite the version byte. Decoding must recompute an identical
        // summary from the bitmap.
        let set = sample_set(700, 11);
        let v2 = set.serialize_v2();
        let m_bytes = set.bitmap_bytes().len();
        let summary_bytes = set.summary_words().len() * 8;
        let mut v1 = Vec::with_capacity(v2.len() - summary_bytes);
        v1.extend_from_slice(&v2[..15 + m_bytes]);
        v1.extend_from_slice(&v2[15 + m_bytes + summary_bytes..]);
        v1[4] = 1;
        let (back, used) = SegmentedSet::deserialize(&v1).unwrap();
        assert_eq!(used, v1.len());
        assert_eq!(back.summary_words(), set.summary_words());
        assert!(back.validate());
        assert_eq!(intersect_count(&set, &back), set.len());
    }

    #[test]
    fn rejects_tampered_summary() {
        let set = sample_set(500, 13);
        // v3: flipping summary bytes breaks the stored popcount first.
        let mut bytes = set.serialize();
        let soff = u64::from_le_bytes(bytes[32 + 16..32 + 24].try_into().unwrap()) as usize;
        bytes[soff] ^= 0xFF;
        assert_eq!(
            SegmentedSet::deserialize(&bytes).unwrap_err(),
            DecodeError::Corrupt
        );
        // v2: the stored summary no longer matches the recomputed one.
        let mut bytes = set.serialize_v2();
        let summary_start = 15 + set.bitmap_bytes().len();
        bytes[summary_start] ^= 0xFF;
        assert_eq!(
            SegmentedSet::deserialize(&bytes).unwrap_err(),
            DecodeError::Corrupt
        );
    }

    #[test]
    fn rejects_truncated_payload() {
        let set = sample_set(500, 9);
        let bytes = set.serialize();
        for cut in [10usize, 20, 64, bytes.len() - 1] {
            assert_eq!(
                SegmentedSet::deserialize(&bytes[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut={cut}"
            );
        }
    }

    #[test]
    fn sections_are_aligned_and_exact() {
        let set = sample_set(2_000, 17);
        let bytes = set.serialize();
        let total = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        assert_eq!(total as usize, bytes.len());
        let mut prev_end = V4_HEADER_LEN as u64;
        for i in 0..SEC_COUNT {
            let off = u64::from_le_bytes(bytes[32 + i * 16..40 + i * 16].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[40 + i * 16..48 + i * 16].try_into().unwrap());
            assert_eq!(off % 64, 0, "section {i} misaligned");
            assert!(off >= prev_end, "section {i} overlaps its predecessor");
            assert!(off + len <= total, "section {i} out of bounds");
            prev_end = off + len;
        }
    }

    #[test]
    fn mapped_corpus_round_trips_through_a_real_file() {
        let sets = [
            sample_set(0, 31),
            sample_set(100, 32),
            sample_set(5_000, 33),
        ];
        let buf = serialize_many(&sets);
        let path = std::env::temp_dir().join(format!("fesia-v3-corpus-{}", std::process::id()));
        std::fs::write(&path, &buf).unwrap();
        let file = Arc::new(MappedFile::open(&path).unwrap());
        let back = deserialize_many_mapped(&file).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back.len(), sets.len());
        for (b, s) in back.iter().zip(&sets) {
            assert!(b.validate(), "mapped set fails validation");
            assert_same_set(b, s);
        }
        // The sets stay usable after the Arc handle is dropped: each
        // Section keeps the mapping alive.
        drop(file);
        assert_eq!(intersect_count(&back[1], &back[2]), {
            let a: std::collections::BTreeSet<u32> =
                sets[1].reordered_elements().iter().copied().collect();
            sets[2]
                .reordered_elements()
                .iter()
                .filter(|x| a.contains(x))
                .count()
        });
    }

    #[test]
    fn mapped_decode_rejects_what_it_must() {
        let set = sample_set(400, 41);
        let buf = serialize_many(std::slice::from_ref(&set));
        let aligned = |b: &[u8]| (b.as_ptr() as usize).is_multiple_of(8);

        // Legacy framing is owned-path-only.
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&1u64.to_le_bytes());
        set.serialize_v2_into(&mut legacy);
        let f = Arc::new(MappedFile::from_bytes(legacy));
        assert_eq!(
            deserialize_many_mapped(&f).unwrap_err(),
            DecodeError::BadVersion(VERSION_V2)
        );

        // A tampered section-table length fails the exact-length check.
        let mut bad = buf.clone();
        bad[MANY_PROLOGUE + 40] ^= 0x01; // BITMAP len, low byte
        let f = Arc::new(MappedFile::from_bytes(bad));
        if aligned(f.bytes()) {
            assert_eq!(
                deserialize_many_mapped(&f).unwrap_err(),
                DecodeError::Corrupt
            );
        }

        // A tampered segment-meta entry breaks the prefix-sum invariant.
        let mut bad = buf.clone();
        let set_start = MANY_PROLOGUE;
        let moff = u64::from_le_bytes(
            buf[set_start + 32 + 2 * 16..set_start + 40 + 2 * 16]
                .try_into()
                .unwrap(),
        ) as usize;
        bad[set_start + moff + 2] ^= 0xFF; // offset bits of a compact entry
        let f = Arc::new(MappedFile::from_bytes(bad));
        if aligned(f.bytes()) {
            assert_eq!(
                deserialize_many_mapped(&f).unwrap_err(),
                DecodeError::Corrupt
            );
        }

        // A misaligned base is refused outright (never UB).
        let mut shifted = vec![0u8; 1];
        shifted.extend_from_slice(&buf[MANY_PROLOGUE..]);
        let f = Arc::new(MappedFile::from_bytes(shifted));
        if !aligned(&f.bytes()[1..]) {
            assert_eq!(
                SegmentedSet::deserialize_mapped(&f, 1).unwrap_err(),
                DecodeError::Corrupt
            );
        }

        // Truncation inside the first set block.
        let f = Arc::new(MappedFile::from_bytes(buf[..buf.len() - 1].to_vec()));
        assert_eq!(
            deserialize_many_mapped(&f).unwrap_err(),
            DecodeError::Truncated
        );
    }
}
