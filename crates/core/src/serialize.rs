//! Compact binary persistence for [`SegmentedSet`].
//!
//! The segmented bitmap is an *offline*-built structure (the paper reports
//! 77.7 s to encode WebDocs); a database or search engine builds it once
//! and memory-maps or loads it at query time. The format is deliberately
//! simple and versioned:
//!
//! ```text
//! magic   b"FSIA"            4 bytes
//! version u8                 (currently 2)
//! lane    u8                 (8 or 16)
//! log2_m  u8
//! n       u64 LE
//! bitmap  [u8; m/8]
//! summary [u64 LE; ceil(ceil(m/512) / 64)]   (version >= 2 only)
//! meta    per-segment sizes as u32 LE (offsets are recomputed)
//! body    [u32 LE; n]        reordered elements (padding is rebuilt)
//! ```
//!
//! Storing sizes rather than packed `(offset, size)` entries keeps the
//! format independent of the in-memory representation (compact vs wide)
//! and shrinks no information: offsets are prefix sums. Version 2 adds
//! the summary level of the two-level bitmap (one bit per 512-bit
//! block); version-1 buffers still decode — the summary is recomputed
//! from the bitmap, which is cheap relative to segment-meta rebuilding.

use crate::error::BuildError;
use crate::params::FesiaParams;
use crate::set::SegmentedSet;
use fesia_simd::mask::LaneWidth;

/// Format magic.
const MAGIC: [u8; 4] = *b"FSIA";
/// Current format version.
const VERSION: u8 = 2;

/// Why a byte buffer could not be decoded into a [`SegmentedSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer too short for the declared layout.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Invalid header field (lane width or bitmap size).
    BadHeader,
    /// The decoded structure failed validation (corrupt or tampered data).
    Corrupt,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer too short"),
            DecodeError::BadMagic => write!(f, "not a FESIA segmented-set buffer"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadHeader => write!(f, "invalid header field"),
            DecodeError::Corrupt => write!(f, "structure failed validation"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl SegmentedSet {
    /// Append the binary encoding of this set to `out`.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.lane().bits() as u8);
        out.push(self.log2_m() as u8);
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(self.bitmap_bytes());
        for &w in self.summary_words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for i in 0..self.num_segments() {
            out.extend_from_slice(&(self.seg_size(i) as u32).to_le_bytes());
        }
        for &x in self.reordered_elements() {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// The binary encoding as a fresh buffer.
    ///
    /// ```
    /// use fesia_core::{FesiaParams, SegmentedSet};
    /// let s = SegmentedSet::build(&[7, 11, 42], &FesiaParams::auto()).unwrap();
    /// let bytes = s.serialize();
    /// let (back, used) = SegmentedSet::deserialize(&bytes).unwrap();
    /// assert_eq!(used, bytes.len());
    /// assert!(back.contains(42));
    /// ```
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.serialize_into(&mut out);
        out
    }

    /// Exact length of [`SegmentedSet::serialize`]'s output.
    pub fn serialized_len(&self) -> usize {
        4 + 3
            + 8
            + self.bitmap_bytes().len()
            + self.summary_words().len() * 8
            + self.num_segments() * 4
            + self.len() * 4
    }

    /// Decode a buffer produced by [`SegmentedSet::serialize`]; returns the
    /// set and the number of bytes consumed (buffers may be concatenated).
    pub fn deserialize(bytes: &[u8]) -> Result<(SegmentedSet, usize), DecodeError> {
        let need = |n: usize, at: usize| {
            if bytes.len() < at + n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        };
        need(15, 0)?;
        if bytes[0..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = bytes[4];
        if !(1..=VERSION).contains(&version) {
            return Err(DecodeError::BadVersion(version));
        }
        let lane = match bytes[5] {
            8 => LaneWidth::U8,
            16 => LaneWidth::U16,
            _ => return Err(DecodeError::BadHeader),
        };
        let log2_m = bytes[6] as u32;
        if !(9..=32).contains(&log2_m) {
            // m below 512 bits or beyond the hash range is never produced.
            return Err(DecodeError::BadHeader);
        }
        let n = u64::from_le_bytes(bytes[7..15].try_into().expect("checked")) as usize;
        let m_bytes = (1usize << log2_m) / 8;
        let segs = (1usize << log2_m) / lane.bits();
        let mut at = 15;
        need(m_bytes, at)?;
        let bitmap = bytes[at..at + m_bytes].to_vec();
        at += m_bytes;
        let summary = if version >= 2 {
            let words = fesia_simd::mask::summary_len(m_bytes);
            need(words * 8, at)?;
            let s: Vec<u64> = (0..words)
                .map(|i| {
                    u64::from_le_bytes(
                        bytes[at + i * 8..at + i * 8 + 8]
                            .try_into()
                            .expect("checked"),
                    )
                })
                .collect();
            at += words * 8;
            Some(s)
        } else {
            None
        };
        need(segs * 4, at)?;
        let sizes: Vec<u32> = (0..segs)
            .map(|i| {
                u32::from_le_bytes(
                    bytes[at + i * 4..at + i * 4 + 4]
                        .try_into()
                        .expect("checked"),
                )
            })
            .collect();
        at += segs * 4;
        if sizes.iter().map(|&s| s as u64).sum::<u64>() != n as u64 {
            return Err(DecodeError::Corrupt);
        }
        need(n * 4, at)?;
        let reordered: Vec<u32> = (0..n)
            .map(|i| {
                u32::from_le_bytes(
                    bytes[at + i * 4..at + i * 4 + 4]
                        .try_into()
                        .expect("checked"),
                )
            })
            .collect();
        at += n * 4;

        let set = SegmentedSet::from_decoded_parts(bitmap, summary, sizes, reordered, log2_m, lane)
            .ok_or(DecodeError::Corrupt)?;
        Ok((set, at))
    }
}

/// Convenience: serialize a whole collection (e.g. the per-term encodings
/// of an inverted index) into one buffer.
pub fn serialize_many(sets: &[SegmentedSet]) -> Vec<u8> {
    let total: usize = sets.iter().map(SegmentedSet::serialized_len).sum();
    let mut out = Vec::with_capacity(total + 8);
    out.extend_from_slice(&(sets.len() as u64).to_le_bytes());
    for s in sets {
        s.serialize_into(&mut out);
    }
    out
}

/// Decode a buffer produced by [`serialize_many`].
pub fn deserialize_many(bytes: &[u8]) -> Result<Vec<SegmentedSet>, DecodeError> {
    if bytes.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let count = u64::from_le_bytes(bytes[..8].try_into().expect("checked"));
    // The count field is untrusted input: cap it by what the remaining
    // bytes could possibly hold (every encoded set takes at least a
    // 15-byte header) before sizing any allocation from it. A hostile
    // 8-byte count would otherwise drive `Vec::with_capacity` to abort
    // or overcommit.
    const MIN_SET_ENCODING: usize = 15;
    if count > ((bytes.len() - 8) / MIN_SET_ENCODING) as u64 {
        return Err(DecodeError::Truncated);
    }
    let count = count as usize;
    let mut at = 8;
    let mut sets = Vec::with_capacity(count);
    for _ in 0..count {
        let (set, used) = SegmentedSet::deserialize(&bytes[at..])?;
        at += used;
        sets.push(set);
    }
    Ok(sets)
}

/// Rebuild a set from an already-sorted slice with an explicit bitmap size
/// — used by tests that need a specific (m, s) combination.
pub fn build_with_bits(
    sorted: &[u32],
    bits_per_element: f64,
    lane: LaneWidth,
) -> Result<SegmentedSet, BuildError> {
    SegmentedSet::build(
        sorted,
        &FesiaParams::auto()
            .with_bits_per_element(bits_per_element)
            .with_segment(lane),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::intersect_count;

    fn sample_set(n: usize, seed: u64) -> SegmentedSet {
        let mut state = seed | 1;
        let mut vals = std::collections::BTreeSet::new();
        while vals.len() < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            vals.insert((state % 1_000_000) as u32);
        }
        let v: Vec<u32> = vals.into_iter().collect();
        SegmentedSet::build(&v, &FesiaParams::auto()).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        for n in [0usize, 1, 100, 5_000] {
            let set = sample_set(n, 42 + n as u64);
            let bytes = set.serialize();
            assert_eq!(bytes.len(), set.serialized_len());
            let (back, used) = SegmentedSet::deserialize(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert!(back.validate());
            assert_eq!(back.len(), set.len());
            assert_eq!(back.bitmap_bytes(), set.bitmap_bytes());
            assert_eq!(back.summary_words(), set.summary_words());
            assert_eq!(back.reordered_elements(), set.reordered_elements());
            // Behavioral equality: intersects identically.
            assert_eq!(intersect_count(&set, &back), set.len());
        }
    }

    #[test]
    fn concatenated_buffers_decode_in_sequence() {
        let a = sample_set(200, 1);
        let b = sample_set(300, 2);
        let many = serialize_many(&[a.clone(), b.clone()]);
        let back = deserialize_many(&many).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].reordered_elements(), a.reordered_elements());
        assert_eq!(back[1].reordered_elements(), b.reordered_elements());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            SegmentedSet::deserialize(b"FSIA").unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            SegmentedSet::deserialize(&[0u8; 64]).unwrap_err(),
            DecodeError::BadMagic
        );
        let mut bytes = sample_set(100, 3).serialize();
        bytes[4] = 99;
        assert_eq!(
            SegmentedSet::deserialize(&bytes).unwrap_err(),
            DecodeError::BadVersion(99)
        );
    }

    #[test]
    fn rejects_tampered_payload() {
        let set = sample_set(500, 7);
        let mut bytes = set.serialize();
        // Flip a bit inside the bitmap region: the element -> bit mapping
        // no longer validates.
        let bitmap_start = 15;
        bytes[bitmap_start + 3] ^= 0xFF;
        assert_eq!(
            SegmentedSet::deserialize(&bytes).unwrap_err(),
            DecodeError::Corrupt
        );
    }

    #[test]
    fn version_1_buffers_still_decode() {
        // Down-convert a v2 buffer by hand: drop the summary words and
        // rewrite the version byte. Decoding must recompute an identical
        // summary from the bitmap.
        let set = sample_set(700, 11);
        let v2 = set.serialize();
        let m_bytes = set.bitmap_bytes().len();
        let summary_bytes = set.summary_words().len() * 8;
        let mut v1 = Vec::with_capacity(v2.len() - summary_bytes);
        v1.extend_from_slice(&v2[..15 + m_bytes]);
        v1.extend_from_slice(&v2[15 + m_bytes + summary_bytes..]);
        v1[4] = 1;
        let (back, used) = SegmentedSet::deserialize(&v1).unwrap();
        assert_eq!(used, v1.len());
        assert_eq!(back.summary_words(), set.summary_words());
        assert!(back.validate());
        assert_eq!(intersect_count(&set, &back), set.len());
    }

    #[test]
    fn rejects_tampered_summary() {
        let set = sample_set(500, 13);
        let mut bytes = set.serialize();
        // Flip a byte inside the summary region: the stored summary no
        // longer matches the one recomputed from the bitmap.
        let summary_start = 15 + set.bitmap_bytes().len();
        bytes[summary_start] ^= 0xFF;
        assert_eq!(
            SegmentedSet::deserialize(&bytes).unwrap_err(),
            DecodeError::Corrupt
        );
    }

    #[test]
    fn rejects_truncated_payload() {
        let set = sample_set(500, 9);
        let bytes = set.serialize();
        for cut in [10usize, 20, bytes.len() - 1] {
            assert_eq!(
                SegmentedSet::deserialize(&bytes[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut={cut}"
            );
        }
    }
}
