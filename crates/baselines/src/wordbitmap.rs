//! Word-bitmap intersection — Ding & König, "Fast set intersection in
//! memory" (the paper's \[4\], the `Fast` row of Table I).
//!
//! The structural ancestor of FESIA: elements hash into an `m`-bit bitmap
//! whose 64-bit *words* play the role of FESIA's segments; intersection
//! ANDs the word arrays and verifies the short element lists of non-zero
//! words. With `m = n*sqrt(w)` and `w = 64`, the complexity is
//! `O(n/sqrt(w) + r)` — the same bound as FESIA — but the method is purely
//! scalar: no SIMD AND, no lane extraction, no specialized kernels. FESIA's
//! contribution is precisely the gap between this baseline and itself.

/// fmix32 (MurmurHash3 finalizer) — same mixer as the rest of the
/// workspace so bucket statistics are comparable.
#[inline]
fn mix(x: u32) -> u32 {
    let mut x = x ^ (x >> 16);
    x = x.wrapping_mul(0x85eb_ca6b);
    x ^= x >> 13;
    x = x.wrapping_mul(0xc2b2_ae35);
    x ^ (x >> 16)
}

/// A set encoded as a word bitmap plus per-word element buckets.
#[derive(Debug, Clone)]
pub struct WordBitmapSet {
    words: Vec<u64>,
    log2_m: u32,
    offsets: Vec<u32>,
    reordered: Vec<u32>,
    n: usize,
}

impl WordBitmapSet {
    /// Encode a sorted, duplicate-free slice. `m = n * 8` bits
    /// (`sqrt(64) = 8`), rounded to a power of two of at least 512.
    pub fn build(sorted: &[u32]) -> WordBitmapSet {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let m = (sorted.len() * 8).next_power_of_two().max(512);
        let log2_m = m.trailing_zeros();
        let num_words = m / 64;
        let mut words = vec![0u64; num_words];
        let mut sizes = vec![0u32; num_words];
        let pos = |x: u32| (mix(x) & (m as u32 - 1)) as usize;
        for &x in sorted {
            let p = pos(x);
            words[p / 64] |= 1 << (p % 64);
            sizes[p / 64] += 1;
        }
        let mut offsets = Vec::with_capacity(num_words + 1);
        let mut acc = 0u32;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        offsets.push(acc);
        let mut cursors = offsets[..num_words].to_vec();
        let mut reordered = vec![0u32; sorted.len()];
        for &x in sorted {
            let w = pos(x) / 64;
            reordered[cursors[w] as usize] = x;
            cursors[w] += 1;
        }
        WordBitmapSet {
            words,
            log2_m,
            offsets,
            reordered,
            n: sorted.len(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bitmap size `m` in bits.
    #[inline]
    pub fn bitmap_bits(&self) -> usize {
        1usize << self.log2_m
    }

    /// Heap bytes of the encoding.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + self.offsets.len() * 4 + self.reordered.len() * 4
    }

    /// Elements bucketed in word `w`, sorted ascending.
    #[inline]
    fn bucket(&self, w: usize) -> &[u32] {
        &self.reordered[self.offsets[w] as usize..self.offsets[w + 1] as usize]
    }
}

/// Intersection count: scalar word-AND sweep, then scalar merges of the
/// buckets of non-zero words. Smaller bitmaps tile larger ones (both are
/// powers of two), mirroring FESIA's folding rule.
pub fn count(a: &WordBitmapSet, b: &WordBitmapSet) -> usize {
    let (large, small) = if a.words.len() >= b.words.len() {
        (a, b)
    } else {
        (b, a)
    };
    let mask = small.words.len() - 1;
    let mut r = 0usize;
    for (i, &wl) in large.words.iter().enumerate() {
        if wl & small.words[i & mask] != 0 {
            r += crate::merge::branchless_count(large.bucket(i), small.bucket(i & mask));
        }
    }
    r
}

/// One-shot convenience: build both encodings and count. The build cost is
/// *included* here; benchmark code prebuilds, matching the paper's
/// offline/online split.
pub fn count_slices(a: &[u32], b: &[u32]) -> usize {
    count(&WordBitmapSet::build(a), &WordBitmapSet::build(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64, universe: u32) -> Vec<u32> {
        let mut state = seed | 1;
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            set.insert((state % universe as u64) as u32);
        }
        set.into_iter().collect()
    }

    #[test]
    fn structure_is_consistent() {
        let v = gen(2_000, 3, 40_000);
        let s = WordBitmapSet::build(&v);
        assert_eq!(s.len(), v.len());
        let total: usize = (0..s.words.len()).map(|w| s.bucket(w).len()).sum();
        assert_eq!(total, v.len());
        // Every bucket is sorted and hashes into its own word.
        let m = 1u32 << s.log2_m;
        for w in 0..s.words.len() {
            let b = s.bucket(w);
            assert!(b.windows(2).all(|p| p[0] < p[1]));
            for &x in b {
                assert_eq!(((mix(x) & (m - 1)) / 64) as usize, w);
            }
        }
    }

    #[test]
    fn count_matches_merge() {
        let a = gen(3_000, 7, 60_000);
        let b = gen(3_000, 29, 60_000);
        assert_eq!(count_slices(&a, &b), crate::merge::scalar_count(&a, &b));
    }

    #[test]
    fn folded_sizes_match_merge() {
        let a = gen(100, 13, 500_000);
        let b = gen(50_000, 31, 500_000);
        let sa = WordBitmapSet::build(&a);
        let sb = WordBitmapSet::build(&b);
        assert_ne!(sa.words.len(), sb.words.len());
        let want = crate::merge::scalar_count(&a, &b);
        assert_eq!(count(&sa, &sb), want);
        assert_eq!(count(&sb, &sa), want);
    }

    #[test]
    fn empty_and_identical() {
        let v = gen(500, 17, 10_000);
        let s = WordBitmapSet::build(&v);
        let e = WordBitmapSet::build(&[]);
        assert_eq!(count(&s, &e), 0);
        assert_eq!(count(&s, &s), v.len());
    }
}
