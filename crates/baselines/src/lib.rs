//! # fesia-baselines
//!
//! The state-of-the-art set intersection methods FESIA is evaluated
//! against (paper §II and §VII-A), each implemented from its original
//! description:
//!
//! | Module | Paper name | Complexity | SIMD |
//! |---|---|---|---|
//! | [`merge`] | `Scalar` (Listing 1, branchless variant) | `n1 + n2` | — |
//! | [`galloping`] | `scalarGalloping` (Bentley–Yao) | `n1 log n2` | — |
//! | [`simd_galloping`] | `SIMDGalloping` (Lemire et al.) | `n1 log n2` | ✓ |
//! | [`bmiss`] | `BMiss` (Inoue et al.) | `n1 + n2` | ✓ |
//! | [`shuffling`] | `Shuffling` (Katsov / Schlegel et al.) | `n1 + n2` | ✓ |
//! | [`hashset`] | hash-based (§II-A) | `min(n1, n2)` | — |
//! | [`hiera`] | `Hiera` (Schlegel et al., STTNI) | `n1 + n2` | ✓ |
//! | [`roaring`] | Roaring bitmap (related work \[16\]) | containers | word-parallel |
//! | [`wordbitmap`] | `Fast` (Ding & König) | `n/sqrt(w) + r` | — |
//!
//! All methods consume plain sorted `&[u32]` slices (FESIA itself, with its
//! offline-encoded `fesia_core::SegmentedSet`, lives in `fesia-core`).
//! [`Method`] enumerates them for benchmark sweeps and the
//! [`SliceIntersector`] trait lets the graph/index substrates plug any of
//! them in.

pub mod bmiss;
pub mod galloping;
pub mod hashset;
pub mod hiera;
pub mod merge;
pub mod roaring;
pub mod shuffling;
pub mod simd_galloping;
pub mod wordbitmap;

use fesia_simd::SimdLevel;

/// Every slice-based intersection method, for benchmark sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Textbook branchy merge (Listing 1).
    ScalarMerge,
    /// Branch-free merge — the paper's optimized `Scalar` baseline.
    Scalar,
    /// Scalar galloping (binary search).
    ScalarGalloping,
    /// SIMD galloping at a given ISA level.
    SimdGalloping(SimdLevel),
    /// Block merge with shuffle-based all-pairs compares.
    Shuffling(SimdLevel),
    /// Block-filtered merge (branch-misprediction avoidance).
    BMiss(SimdLevel),
    /// Hash-table build + probe.
    HashSet,
    /// STTNI-based hierarchical intersection (Schlegel et al.).
    Hiera,
    /// Roaring-style compressed bitmap (Lemire et al.).
    Roaring,
    /// Word-bitmap filter (Ding & König's `Fast`), scalar.
    WordBitmap,
}

impl Method {
    /// All methods at the widest ISA available, in the paper's order.
    pub fn all() -> Vec<Method> {
        let l = SimdLevel::detect();
        vec![
            Method::ScalarMerge,
            Method::Scalar,
            Method::ScalarGalloping,
            Method::SimdGalloping(l),
            Method::BMiss(l),
            Method::Shuffling(l),
            Method::HashSet,
            Method::Hiera,
            Method::Roaring,
            Method::WordBitmap,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Method::ScalarMerge => "ScalarMerge".into(),
            Method::Scalar => "Scalar".into(),
            Method::ScalarGalloping => "scalarGalloping".into(),
            Method::SimdGalloping(l) => format!("SIMDGalloping[{l}]"),
            Method::Shuffling(l) => format!("Shuffling[{l}]"),
            Method::BMiss(l) => format!("BMiss[{l}]"),
            Method::HashSet => "Hash".into(),
            Method::Hiera => "Hiera".into(),
            Method::Roaring => "Roaring".into(),
            Method::WordBitmap => "WordBitmap(Fast)".into(),
        }
    }

    /// |A ∩ B| for sorted, duplicate-free inputs.
    ///
    /// ```
    /// use fesia_baselines::Method;
    /// for m in Method::all() {
    ///     assert_eq!(m.count(&[1, 3, 5], &[3, 5, 7]), 2);
    /// }
    /// ```
    pub fn count(&self, a: &[u32], b: &[u32]) -> usize {
        match self {
            Method::ScalarMerge => merge::scalar_count(a, b),
            Method::Scalar => merge::branchless_count(a, b),
            Method::ScalarGalloping => galloping::count(a, b),
            Method::SimdGalloping(l) => simd_galloping::count_at(a, b, *l),
            Method::Shuffling(l) => shuffling::count_at(a, b, *l),
            Method::BMiss(l) => bmiss::count_at(a, b, *l),
            Method::HashSet => hashset::count(a, b),
            Method::Hiera => hiera::count_slices(a, b),
            Method::Roaring => roaring::count_slices(a, b),
            Method::WordBitmap => wordbitmap::count_slices(a, b),
        }
    }

    /// k-way intersection count (Table I's rightmost column):
    /// galloping anchors the smallest list; hash probes prebuilt tables;
    /// merge-family methods intersect pairwise, smallest-first.
    pub fn kway_count(&self, lists: &[&[u32]]) -> usize {
        assert!(!lists.is_empty(), "k-way intersection of zero lists");
        if lists.len() == 1 {
            return lists[0].len();
        }
        if lists.len() == 2 {
            return self.count(lists[0], lists[1]);
        }
        match self {
            Method::ScalarGalloping | Method::SimdGalloping(_) => galloping::kway_count(lists),
            Method::HashSet => {
                let anchor_idx = (0..lists.len())
                    .min_by_key(|&i| lists[i].len())
                    .expect("non-empty");
                let tables: Vec<hashset::U32HashSet> = lists
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != anchor_idx)
                    .map(|(_, l)| hashset::U32HashSet::build(l))
                    .collect();
                lists[anchor_idx]
                    .iter()
                    .filter(|&&x| tables.iter().all(|t| t.contains(x)))
                    .count()
            }
            _ => {
                // Pairwise, smallest lists first to keep intermediates
                // tiny; intermediate steps materialize (merge), the final
                // step uses the method's own counting kernel.
                let mut order: Vec<&[u32]> = lists.to_vec();
                order.sort_by_key(|l| l.len());
                let mut acc = merge::intersect(order[0], order[1]);
                for l in &order[2..order.len() - 1] {
                    if acc.is_empty() {
                        return 0;
                    }
                    acc = merge::intersect(&acc, l);
                }
                self.count(&acc, order[order.len() - 1])
            }
        }
    }
}

/// Object-safe intersection interface for the graph/index substrates.
pub trait SliceIntersector: Sync {
    /// Human-readable method name.
    fn name(&self) -> String;
    /// |A ∩ B| for sorted, duplicate-free inputs.
    fn count(&self, a: &[u32], b: &[u32]) -> usize;
}

impl SliceIntersector for Method {
    fn name(&self) -> String {
        Method::name(self)
    }

    fn count(&self, a: &[u32], b: &[u32]) -> usize {
        Method::count(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64, universe: u32) -> Vec<u32> {
        let mut state = seed | 1;
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            set.insert((state % universe as u64) as u32);
        }
        set.into_iter().collect()
    }

    #[test]
    fn every_method_agrees_with_reference() {
        let a = gen(3_000, 41, 80_000);
        let b = gen(2_500, 43, 80_000);
        let want = merge::scalar_count(&a, &b);
        assert!(want > 0);
        for m in Method::all() {
            assert_eq!(m.count(&a, &b), want, "method={}", m.name());
        }
    }

    #[test]
    fn every_method_agrees_on_edge_cases() {
        let empty: Vec<u32> = vec![];
        let single = vec![42u32];
        let run: Vec<u32> = (0..100).collect();
        for m in Method::all() {
            assert_eq!(m.count(&empty, &run), 0, "{} empty/run", m.name());
            assert_eq!(m.count(&run, &empty), 0, "{} run/empty", m.name());
            assert_eq!(m.count(&single, &run), 1, "{} single/run", m.name());
            assert_eq!(m.count(&run, &run), 100, "{} identical", m.name());
        }
    }

    #[test]
    fn every_method_agrees_on_kway() {
        let lists: Vec<Vec<u32>> = (0..4).map(|k| gen(1_500, 100 + k, 15_000)).collect();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let ab = merge::intersect(&lists[0], &lists[1]);
        let abc = merge::intersect(&ab, &lists[2]);
        let want = merge::scalar_count(&abc, &lists[3]);
        for m in Method::all() {
            assert_eq!(m.kway_count(&refs), want, "method={}", m.name());
        }
    }

    #[test]
    fn per_level_variants_agree() {
        let a = gen(2_000, 51, 30_000);
        let b = gen(2_000, 57, 30_000);
        let want = merge::scalar_count(&a, &b);
        for l in SimdLevel::available_levels() {
            for m in [
                Method::SimdGalloping(l),
                Method::Shuffling(l),
                Method::BMiss(l),
            ] {
                assert_eq!(m.count(&a, &b), want, "method={}", m.name());
            }
        }
    }

    #[test]
    fn trait_object_dispatch_works() {
        let m: &dyn SliceIntersector = &Method::Scalar;
        assert_eq!(m.count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(m.name(), "Scalar");
    }
}
