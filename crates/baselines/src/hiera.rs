//! Hiera — Schlegel, Willhalm & Lehner, "Fast sorted-set intersection
//! using SIMD instructions" (the paper's \[3\]).
//!
//! Hiera exploits the SSE4.2 **STTNI** string-comparison instruction
//! (`pcmpestrm`), which performs an all-pairs equality comparison between
//! two vectors of up to eight 16-bit values in a single instruction.
//! Because STTNI only handles 8/16-bit lanes, 32-bit sets are stored
//! *hierarchically*: elements are grouped by their upper 16 bits, and each
//! group keeps a sorted list of lower 16-bit halves. Intersection merges
//! the (few) group headers scalar-style and runs STTNI block comparisons
//! on the lower-half lists of matching groups.
//!
//! The paper's Table I notes Hiera's two weaknesses, both reproduced here:
//! it degrades to a scalar merge when the data is sparse (every group
//! holds ~1 element, so the 8-way comparison has nothing to chew on), and
//! it is not portable to CPUs without STTNI (we fall back to scalar).

use fesia_simd::SimdLevel;

/// A set in Hiera's hierarchical representation.
#[derive(Debug, Clone)]
pub struct HieraSet {
    /// Sorted upper-16-bit group keys.
    groups: Vec<u16>,
    /// Start of each group's run in `lows` (length `groups.len() + 1`).
    offsets: Vec<u32>,
    /// Lower 16-bit halves, grouped by `groups`, sorted within a group.
    lows: Vec<u16>,
}

impl HieraSet {
    /// Build from a sorted, duplicate-free slice.
    pub fn build(sorted: &[u32]) -> HieraSet {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let mut groups = Vec::new();
        let mut offsets = Vec::new(); // start of each group, plus total
        let mut lows = Vec::with_capacity(sorted.len());
        for &x in sorted {
            let hi = (x >> 16) as u16;
            if groups.last() != Some(&hi) {
                groups.push(hi);
                offsets.push(lows.len() as u32);
            }
            lows.push(x as u16);
        }
        offsets.push(lows.len() as u32);
        HieraSet {
            groups,
            offsets,
            lows,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.lows.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.lows.is_empty()
    }

    /// Heap bytes of the hierarchical encoding.
    pub fn memory_bytes(&self) -> usize {
        self.groups.len() * 2 + self.offsets.len() * 4 + self.lows.len() * 2
    }

    #[inline]
    fn group_lows(&self, gi: usize) -> &[u16] {
        &self.lows[self.offsets[gi] as usize..self.offsets[gi + 1] as usize]
    }
}

/// Scalar merge over two sorted `u16` runs.
fn merge_u16(a: &[u16], b: &[u16]) -> usize {
    let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        r += (x == y) as usize;
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    r
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// STTNI block intersection of two sorted `u16` runs.
    ///
    /// Advances 8-element blocks as in any block merge; each block pair is
    /// compared all-pairs by one `pcmpestrm` (`_SIDD_UWORD_OPS |
    /// _SIDD_CMP_EQUAL_ANY | _SIDD_BIT_MASK`).
    ///
    /// # Safety
    /// Requires SSE4.2.
    #[target_feature(enable = "sse4.2")]
    pub unsafe fn sttni_count(a: &[u16], b: &[u16]) -> usize {
        const V: usize = 8;
        let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
        let (na, nb) = (a.len(), b.len());
        while i + V <= na && j + V <= nb {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i);
            // For each 16-bit lane of vb: does it equal ANY lane of va?
            let mask = _mm_cmpestrm::<{ _SIDD_UWORD_OPS | _SIDD_CMP_EQUAL_ANY | _SIDD_BIT_MASK }>(
                va, V as i32, vb, V as i32,
            );
            r += (_mm_cvtsi128_si32(mask) as u32).count_ones() as usize;
            let amax = *a.get_unchecked(i + V - 1);
            let bmax = *b.get_unchecked(j + V - 1);
            i += if amax <= bmax { V } else { 0 };
            j += if bmax <= amax { V } else { 0 };
        }
        r + super::merge_u16(&a[i..], &b[j..])
    }
}

/// Intersection count of two Hiera sets.
pub fn count(a: &HieraSet, b: &HieraSet) -> usize {
    let use_sttni = SimdLevel::Sse.is_available() && cfg!(target_arch = "x86_64");
    let (mut gi, mut gj, mut r) = (0usize, 0usize, 0usize);
    while gi < a.groups.len() && gj < b.groups.len() {
        match a.groups[gi].cmp(&b.groups[gj]) {
            std::cmp::Ordering::Less => gi += 1,
            std::cmp::Ordering::Greater => gj += 1,
            std::cmp::Ordering::Equal => {
                let la = a.group_lows(gi);
                let lb = b.group_lows(gj);
                r += if use_sttni {
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: SSE4.2 availability checked above.
                    unsafe {
                        x86::sttni_count(la, lb)
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    merge_u16(la, lb)
                } else {
                    merge_u16(la, lb)
                };
                gi += 1;
                gj += 1;
            }
        }
    }
    r
}

/// One-shot convenience: build both hierarchies and count (build included).
pub fn count_slices(a: &[u32], b: &[u32]) -> usize {
    count(&HieraSet::build(a), &HieraSet::build(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64, universe: u32) -> Vec<u32> {
        let mut state = seed | 1;
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            set.insert((state % universe as u64) as u32);
        }
        set.into_iter().collect()
    }

    #[test]
    fn hierarchy_round_trips() {
        let v = vec![1u32, 2, 65_535, 65_536, 65_540, 131_072, 4_000_000_000];
        let h = HieraSet::build(&v);
        assert_eq!(h.len(), v.len());
        let mut rebuilt = Vec::new();
        for (gi, &g) in h.groups.iter().enumerate() {
            for &lo in h.group_lows(gi) {
                rebuilt.push(((g as u32) << 16) | lo as u32);
            }
        }
        assert_eq!(rebuilt, v);
    }

    #[test]
    fn dense_clusters_use_sttni_path_correctly() {
        // Many elements share upper-16 groups -> big group lists.
        let a: Vec<u32> = (0..2_000).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..2_000).map(|i| i * 5).collect();
        assert_eq!(count_slices(&a, &b), crate::merge::scalar_count(&a, &b));
    }

    #[test]
    fn sparse_sets_degrade_gracefully() {
        // One element per group: the scalar-degradation regime.
        let a: Vec<u32> = (0..500).map(|i| i << 16).collect();
        let b: Vec<u32> = (0..500).map(|i| (i << 16) | 1).collect();
        assert_eq!(count_slices(&a, &b), 0);
        let c: Vec<u32> = (0..500).step_by(2).map(|i| i << 16).collect();
        assert_eq!(count_slices(&a, &c), 250);
    }

    #[test]
    fn random_workloads_match_merge() {
        for seed in 0..4u64 {
            let a = gen(3_000, seed * 2 + 1, 500_000);
            let b = gen(3_000, seed * 2 + 2, 500_000);
            assert_eq!(
                count_slices(&a, &b),
                crate::merge::scalar_count(&a, &b),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn group_boundary_values() {
        let a = vec![0x0000_FFFFu32, 0x0001_0000, 0x0001_FFFF, 0x0002_0000];
        let b = vec![0x0000_FFFFu32, 0x0001_FFFF, 0x0002_0001];
        assert_eq!(count_slices(&a, &b), 2);
    }

    #[test]
    fn empties() {
        assert_eq!(count_slices(&[], &[1, 2]), 0);
        assert_eq!(count_slices(&[1, 2], &[]), 0);
        assert!(HieraSet::build(&[]).is_empty());
    }
}
