//! SIMDGalloping — Lemire, Boytsov & Kurz, "SIMD compression and the
//! intersection of sorted integers" (the paper's \[2\]).
//!
//! Galloping as in [`crate::galloping`], but the larger set is walked in
//! vector *blocks*: the exponential/binary phases bracket a block, and the
//! final membership test compares a broadcast of the probe element against
//! the whole block with one SIMD compare instead of a scalar binary-search
//! tail. Falls back to scalar galloping when no vector ISA is available.

use fesia_simd::SimdLevel;

/// Find the first *block* index such that the block's last element is
/// `>= x`, galloping over blocks of `v` elements starting at `blk_lo`.
#[inline]
fn gallop_block(b: &[u32], v: usize, mut blk_lo: usize, x: u32) -> usize {
    let nblocks = b.len() / v;
    let last = |blk: usize| b[blk * v + v - 1];
    if blk_lo >= nblocks || last(blk_lo) >= x {
        return blk_lo;
    }
    let mut step = 1usize;
    while blk_lo + step < nblocks && last(blk_lo + step) < x {
        blk_lo += step;
        step <<= 1;
    }
    let hi = (blk_lo + step).min(nblocks);
    let mut lo = blk_lo + 1;
    let mut hi = hi;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if last(mid) < x {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// Whether `block` (4 elements) contains `x`.
    ///
    /// # Safety
    /// Requires SSE4.2 and `block` valid for 4 reads.
    #[target_feature(enable = "sse4.2")]
    #[inline]
    pub unsafe fn block_contains_sse(block: *const u32, x: u32) -> bool {
        let vx = _mm_set1_epi32(x as i32);
        let vb = _mm_loadu_si128(block as *const __m128i);
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(vx, vb))) != 0
    }

    /// Whether `block` (8 elements) contains `x`.
    ///
    /// # Safety
    /// Requires AVX2 and `block` valid for 8 reads.
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn block_contains_avx2(block: *const u32, x: u32) -> bool {
        let vx = _mm256_set1_epi32(x as i32);
        let vb = _mm256_loadu_si256(block as *const __m256i);
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(vx, vb))) != 0
    }

    /// Whether `block` (16 elements) contains `x`.
    ///
    /// # Safety
    /// Requires AVX-512F and `block` valid for 16 reads.
    #[target_feature(enable = "avx512f")]
    #[inline]
    pub unsafe fn block_contains_avx512(block: *const u32, x: u32) -> bool {
        let vx = _mm512_set1_epi32(x as i32);
        let vb = _mm512_loadu_si512(block as *const _);
        _mm512_cmpeq_epi32_mask(vx, vb) != 0
    }
}

fn count_with_level(a: &[u32], b: &[u32], level: SimdLevel) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if level == SimdLevel::Scalar {
        return crate::galloping::count(small, large);
    }
    let v = level.lanes_u32();
    let nblocks = large.len() / v;
    let mut blk = 0usize;
    let mut r = 0usize;
    let mut idx = 0usize;
    for (k, &x) in small.iter().enumerate() {
        blk = gallop_block(large, v, blk, x);
        if blk == nblocks {
            idx = k;
            break;
        }
        let ptr = unsafe { large.as_ptr().add(blk * v) };
        // SAFETY: the level was checked available by `count`; blk < nblocks
        // so the block is fully in bounds.
        let hit = unsafe {
            match level {
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Sse => x86::block_contains_sse(ptr, x),
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx2 => x86::block_contains_avx2(ptr, x),
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx512 => x86::block_contains_avx512(ptr, x),
                _ => unreachable!("scalar handled above"),
            }
        };
        r += hit as usize;
        idx = k + 1;
    }
    // Tail of `large` not covered by whole blocks: finish scalar.
    if idx < small.len() {
        r += crate::galloping::count(&small[idx..], &large[nblocks * v..]);
    }
    r
}

/// Intersection count via SIMD galloping at the widest available ISA.
pub fn count(a: &[u32], b: &[u32]) -> usize {
    count_with_level(a, b, SimdLevel::detect())
}

/// Intersection count via SIMD galloping at an explicit ISA level.
///
/// # Panics
/// Panics if `level` is unavailable on this CPU.
pub fn count_at(a: &[u32], b: &[u32], level: SimdLevel) -> usize {
    assert!(level.is_available(), "SIMD level {level} not available");
    count_with_level(a, b, level)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64, universe: u32) -> Vec<u32> {
        let mut state = seed | 1;
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            set.insert((state % universe as u64) as u32);
        }
        set.into_iter().collect()
    }

    #[test]
    fn gallop_block_brackets() {
        let b: Vec<u32> = (0..32).map(|i| i * 10).collect(); // blocks of 4
        assert_eq!(gallop_block(&b, 4, 0, 0), 0);
        assert_eq!(gallop_block(&b, 4, 0, 35), 1); // block 0 last = 30 < 35
        assert_eq!(gallop_block(&b, 4, 0, 30), 0);
        assert_eq!(gallop_block(&b, 4, 0, 31), 1);
        assert_eq!(gallop_block(&b, 4, 0, 311), 8); // beyond all blocks
    }

    #[test]
    fn all_levels_match_scalar_galloping() {
        let a = gen(500, 3, 100_000);
        let b = gen(20_000, 17, 100_000);
        let want = crate::galloping::count(&a, &b);
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &b, level), want, "level={level}");
            assert_eq!(count_at(&b, &a, level), want, "level={level} swapped");
        }
    }

    #[test]
    fn small_inputs_and_tails() {
        // Sizes not multiples of any vector width exercise the scalar tail.
        let a = [1u32, 7, 13, 101, 9999];
        let b: Vec<u32> = (0..10_001).filter(|x| x % 7 == 0).collect();
        let want = crate::merge::scalar_count(&a, &b);
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &b, level), want, "level={level}");
        }
    }

    #[test]
    fn empty_inputs() {
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&[], &[1, 2, 3], level), 0);
            assert_eq!(count_at(&[1, 2, 3], &[], level), 0);
        }
    }
}
