//! Merge-based scalar set intersection (paper §II-A, Listing 1).
//!
//! Two variants are provided:
//!
//! * [`scalar_count`] — the textbook two-pointer merge with branches,
//!   exactly Listing 1 of the paper;
//! * [`branchless_count`] — the paper's *Scalar* baseline (§VII-A): the
//!   same merge with the `if/else` ladder replaced by arithmetic pointer
//!   advances that compile to conditional moves, removing the
//!   data-dependent branches that dominate the textbook version's cost.

/// Textbook merge intersection count (Listing 1).
pub fn scalar_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
            r += 1;
        }
    }
    r
}

/// Branch-free merge intersection count (the paper's optimized `Scalar`).
pub fn branchless_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
    let (na, nb) = (a.len(), b.len());
    while i < na && j < nb {
        let x = a[i];
        let y = b[j];
        r += (x == y) as usize;
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    r
}

/// Materializing merge intersection.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Materializing merge union (two-pointer, common elements emitted once).
pub fn union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Materializing merge difference `a \ b`.
pub fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// Materializing merge symmetric difference `a △ b`.
pub fn xor(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_agree() {
        let a = [1u32, 3, 5, 7, 9, 11];
        let b = [2u32, 3, 4, 7, 10, 11, 12];
        assert_eq!(scalar_count(&a, &b), 3);
        assert_eq!(branchless_count(&a, &b), 3);
        assert_eq!(intersect(&a, &b), vec![3, 7, 11]);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(scalar_count(&[], &[1, 2]), 0);
        assert_eq!(branchless_count(&[1, 2], &[]), 0);
        assert_eq!(scalar_count(&[5], &[5]), 1);
        assert_eq!(branchless_count(&[5], &[5]), 1);
        assert!(intersect(&[], &[]).is_empty());
    }

    #[test]
    fn disjoint_and_identical() {
        let a: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 2 + 1).collect();
        assert_eq!(scalar_count(&a, &b), 0);
        assert_eq!(branchless_count(&a, &a), 100);
        assert_eq!(intersect(&a, &a), a);
    }

    #[test]
    fn algebra_oracles_match_naive_sets() {
        let a = [1u32, 3, 5, 7, 9, 11];
        let b = [2u32, 3, 4, 7, 10, 11, 12];
        assert_eq!(union(&a, &b), vec![1, 2, 3, 4, 5, 7, 9, 10, 11, 12]);
        assert_eq!(difference(&a, &b), vec![1, 5, 9]);
        assert_eq!(difference(&b, &a), vec![2, 4, 10, 12]);
        assert_eq!(xor(&a, &b), vec![1, 2, 4, 5, 9, 10, 12]);
        // Identities on empty / identical inputs.
        assert_eq!(union(&[], &a), a.to_vec());
        assert_eq!(union(&a, &[]), a.to_vec());
        assert_eq!(union(&a, &a), a.to_vec());
        assert!(difference(&a, &a).is_empty());
        assert!(xor(&a, &a).is_empty());
        assert_eq!(xor(&[], &b), b.to_vec());
    }
}
