//! A compact Roaring-style bitmap (Lemire et al., "Roaring bitmaps:
//! implementation of an optimized software library" — the paper's \[16\]).
//!
//! Values are partitioned by their upper 16 bits into *containers* of the
//! lower 16 bits; sparse containers store a sorted `u16` array, dense ones
//! a 1024-word bitmap (the classical 4096-element threshold). Intersection
//! walks the (sorted) container keys and intersects container pairs
//! case-by-case: array×array merge, array×bitmap probes, bitmap×bitmap
//! word ANDs with popcount.
//!
//! Included as the representative *compressed bitmap* baseline from the
//! paper's related work (§II-A): like FESIA it exploits word-parallel ANDs
//! on dense data, but it has no selectivity-proportional filtering step —
//! dense×dense intersections always sweep all 1024 words per container.

/// Container density threshold: at most this many values as a sorted array.
const ARRAY_MAX: usize = 4096;

/// Words per bitmap container (`65536 / 64`).
const BITMAP_WORDS: usize = 1024;

#[derive(Debug, Clone)]
enum Container {
    /// Sorted, duplicate-free low-16 values (`len <= ARRAY_MAX`).
    Array(Vec<u16>),
    /// 65536-bit bitmap plus its cardinality.
    Bitmap(Box<[u64; BITMAP_WORDS]>, u32),
}

impl Container {
    fn from_sorted_lows(lows: &[u16]) -> Container {
        if lows.len() <= ARRAY_MAX {
            Container::Array(lows.to_vec())
        } else {
            let mut words = Box::new([0u64; BITMAP_WORDS]);
            for &v in lows {
                words[(v >> 6) as usize] |= 1 << (v & 63);
            }
            Container::Bitmap(words, lows.len() as u32)
        }
    }

    fn cardinality(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap(_, c) => *c as usize,
        }
    }

    fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&v).is_ok(),
            Container::Bitmap(w, _) => w[(v >> 6) as usize] & (1 << (v & 63)) != 0,
        }
    }

    /// |self ∩ other|.
    fn intersect_count(&self, other: &Container) -> usize {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
                while i < a.len() && j < b.len() {
                    let (x, y) = (a[i], b[j]);
                    r += (x == y) as usize;
                    i += (x <= y) as usize;
                    j += (y <= x) as usize;
                }
                r
            }
            (Container::Array(a), bm @ Container::Bitmap(..)) => {
                a.iter().filter(|&&v| bm.contains(v)).count()
            }
            (bm @ Container::Bitmap(..), Container::Array(b)) => {
                b.iter().filter(|&&v| bm.contains(v)).count()
            }
            (Container::Bitmap(wa, _), Container::Bitmap(wb, _)) => wa
                .iter()
                .zip(wb.iter())
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum(),
        }
    }
}

/// A Roaring-style set of `u32` values.
#[derive(Debug, Clone)]
pub struct RoaringSet {
    keys: Vec<u16>,
    containers: Vec<Container>,
    len: usize,
}

impl RoaringSet {
    /// Build from a sorted, duplicate-free slice.
    pub fn build(sorted: &[u32]) -> RoaringSet {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let mut keys = Vec::new();
        let mut containers = Vec::new();
        let mut lows: Vec<u16> = Vec::new();
        let mut current: Option<u16> = None;
        for &x in sorted {
            let hi = (x >> 16) as u16;
            if current != Some(hi) {
                if let Some(k) = current {
                    keys.push(k);
                    containers.push(Container::from_sorted_lows(&lows));
                    lows.clear();
                }
                current = Some(hi);
            }
            lows.push(x as u16);
        }
        if let Some(k) = current {
            keys.push(k);
            containers.push(Container::from_sorted_lows(&lows));
        }
        RoaringSet {
            keys,
            containers,
            len: sorted.len(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains(&self, x: u32) -> bool {
        match self.keys.binary_search(&((x >> 16) as u16)) {
            Ok(ci) => self.containers[ci].contains(x as u16),
            Err(_) => false,
        }
    }

    /// Heap bytes of the encoding.
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * 2
            + self
                .containers
                .iter()
                .map(|c| match c {
                    Container::Array(v) => v.len() * 2,
                    Container::Bitmap(..) => BITMAP_WORDS * 8,
                })
                .sum::<usize>()
    }

    /// Count of dense (bitmap) containers — exposed for tests/inspection.
    pub fn num_bitmap_containers(&self) -> usize {
        self.containers
            .iter()
            .filter(|c| matches!(c, Container::Bitmap(..)))
            .count()
    }

    /// Largest container cardinality — exposed for tests/inspection.
    pub fn max_container_cardinality(&self) -> usize {
        self.containers
            .iter()
            .map(Container::cardinality)
            .max()
            .unwrap_or(0)
    }
}

/// |A ∩ B| over two Roaring sets: merge the container key lists, intersect
/// matching containers.
pub fn count(a: &RoaringSet, b: &RoaringSet) -> usize {
    let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
    while i < a.keys.len() && j < b.keys.len() {
        match a.keys[i].cmp(&b.keys[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                r += a.containers[i].intersect_count(&b.containers[j]);
                i += 1;
                j += 1;
            }
        }
    }
    r
}

/// One-shot convenience: build both encodings and count (build included).
pub fn count_slices(a: &[u32], b: &[u32]) -> usize {
    count(&RoaringSet::build(a), &RoaringSet::build(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64, universe: u32) -> Vec<u32> {
        let mut state = seed | 1;
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            set.insert((state % universe as u64) as u32);
        }
        set.into_iter().collect()
    }

    #[test]
    fn build_selects_container_kinds() {
        // Dense run in one 64K chunk -> bitmap container; a few scattered
        // values elsewhere -> array containers.
        let mut v: Vec<u32> = (0..5_000u32).collect(); // > ARRAY_MAX in chunk 0
        v.extend([100_000u32, 200_000, 300_000]);
        let s = RoaringSet::build(&v);
        assert_eq!(s.len(), v.len());
        assert_eq!(s.num_bitmap_containers(), 1);
        assert_eq!(s.max_container_cardinality(), 5_000);
        for &x in &v {
            assert!(s.contains(x));
        }
        assert!(!s.contains(5_001));
        assert!(!s.contains(100_001));
    }

    #[test]
    fn all_container_pairings_count_correctly() {
        // array x array
        let a1 = gen(1_000, 1, 60_000);
        let b1 = gen(1_000, 2, 60_000);
        assert_eq!(count_slices(&a1, &b1), crate::merge::scalar_count(&a1, &b1));
        // bitmap x bitmap (dense in the same chunk)
        let a2: Vec<u32> = (0..30_000).map(|i| i * 2).collect();
        let b2: Vec<u32> = (0..20_000).map(|i| i * 3).collect();
        assert_eq!(count_slices(&a2, &b2), crate::merge::scalar_count(&a2, &b2));
        // array x bitmap
        let a3 = gen(500, 3, 65_000);
        assert_eq!(count_slices(&a3, &a2), crate::merge::scalar_count(&a3, &a2));
    }

    #[test]
    fn memory_is_compact_for_dense_data() {
        let dense: Vec<u32> = (0..60_000).collect();
        let s = RoaringSet::build(&dense);
        // One bitmap container (8 KiB) beats 240 KB of raw u32s.
        assert!(s.memory_bytes() < 10_000, "{} bytes", s.memory_bytes());
    }

    #[test]
    fn chunk_boundaries() {
        let v = vec![0xFFFFu32, 0x1_0000, 0x1_FFFF, 0x2_0000];
        let w = vec![0xFFFFu32, 0x1_FFFF, 0x2_0001];
        assert_eq!(count_slices(&v, &w), 2);
    }

    #[test]
    fn empties_and_disjoint_keys() {
        assert_eq!(count_slices(&[], &[1, 2]), 0);
        let a = vec![1u32, 2, 3];
        let b = vec![0x10_0000u32, 0x10_0001];
        assert_eq!(count_slices(&a, &b), 0);
    }
}
