//! Shuffling — SIMD block merge with cyclic-rotation all-pairs compares
//! (Katsov's "fast intersection of sorted lists using SSE", the paper's
//! \[13\] and its `Shuffling` baseline; the same scheme as Schlegel et al.).
//!
//! Both inputs advance in blocks of `V` elements. For each block pair, all
//! `V x V` element pairs are compared by rotating one vector `V` times
//! (`_mm_shuffle_epi32` cyclic permutations) and OR-ing the equality masks;
//! then whichever block has the smaller last element advances (both on a
//! tie). Complexity is `O(n1 + n2)` like any merge, but each step retires
//! `V` elements.

use fesia_simd::SimdLevel;

/// Scalar reference with the same blockwise structure (also the non-x86
/// fallback): compare `V x V` blocks all-pairs, advance by last elements.
fn count_scalar_blocked(a: &[u32], b: &[u32], v: usize) -> usize {
    let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
    let (na, nb) = (a.len(), b.len());
    while i + v <= na && j + v <= nb {
        let ab = &a[i..i + v];
        let bb = &b[j..j + v];
        for &x in ab {
            for &y in bb {
                r += (x == y) as usize;
            }
        }
        let amax = a[i + v - 1];
        let bmax = b[j + v - 1];
        i += if amax <= bmax { v } else { 0 };
        j += if bmax <= amax { v } else { 0 };
    }
    // Remainders (one side has fewer than `v` elements left) finish with a
    // scalar merge; the block-advance rule guarantees no retired element
    // can match anything at or beyond the surviving cursors.
    r + crate::merge::branchless_count(&a[i..], &b[j..])
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// SSE block loop: 4-element blocks, 4 cyclic rotations.
    ///
    /// # Safety
    /// Requires SSE4.2.
    #[target_feature(enable = "sse4.2")]
    pub unsafe fn count_sse(a: &[u32], b: &[u32]) -> (usize, usize, usize) {
        const V: usize = 4;
        let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
        let (na, nb) = (a.len(), b.len());
        while i + V <= na && j + V <= nb {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i);
            let c0 = _mm_cmpeq_epi32(va, vb);
            let c1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01));
            let c2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10));
            let c3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11));
            let m = _mm_or_si128(_mm_or_si128(c0, c1), _mm_or_si128(c2, c3));
            r += (_mm_movemask_ps(_mm_castsi128_ps(m)) as u32).count_ones() as usize;
            let amax = *a.get_unchecked(i + V - 1);
            let bmax = *b.get_unchecked(j + V - 1);
            i += if amax <= bmax { V } else { 0 };
            j += if bmax <= amax { V } else { 0 };
        }
        (i, j, r)
    }

    /// AVX-512 block loop: 16-element blocks, 16 cyclic rotations via
    /// `_mm512_permutexvar_epi32` — the same all-pairs network VP2INTERSECT
    /// emulations use on machines without that instruction.
    ///
    /// # Safety
    /// Requires AVX-512 F.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn count_avx512(a: &[u32], b: &[u32]) -> (usize, usize, usize) {
        const V: usize = 16;
        let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
        let (na, nb) = (a.len(), b.len());
        let mut rots = [_mm512_setzero_si512(); V];
        for (k, rot) in rots.iter_mut().enumerate() {
            let idx: [i32; 16] = std::array::from_fn(|l| ((l + k) % V) as i32);
            *rot = _mm512_loadu_si512(idx.as_ptr() as *const _);
        }
        while i + V <= na && j + V <= nb {
            let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
            let vb = _mm512_loadu_si512(b.as_ptr().add(j) as *const _);
            let mut m: __mmask16 = 0;
            for rot in rots {
                let rb = _mm512_permutexvar_epi32(rot, vb);
                m |= _mm512_cmpeq_epi32_mask(va, rb);
            }
            r += (m as u32).count_ones() as usize;
            let amax = *a.get_unchecked(i + V - 1);
            let bmax = *b.get_unchecked(j + V - 1);
            i += if amax <= bmax { V } else { 0 };
            j += if bmax <= amax { V } else { 0 };
        }
        (i, j, r)
    }

    /// AVX2 block loop: 8-element blocks, 8 cyclic rotations via
    /// `_mm256_permutevar8x32_epi32`.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_avx2(a: &[u32], b: &[u32]) -> (usize, usize, usize) {
        const V: usize = 8;
        let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
        let (na, nb) = (a.len(), b.len());
        // Cyclic rotation index vectors: rotation k maps lane l -> l + k.
        let mut rots = [_mm256_setzero_si256(); V];
        for (k, rot) in rots.iter_mut().enumerate() {
            let idx: [i32; 8] = std::array::from_fn(|l| ((l + k) % V) as i32);
            *rot = _mm256_loadu_si256(idx.as_ptr() as *const __m256i);
        }
        while i + V <= na && j + V <= nb {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(j) as *const __m256i);
            let mut m = _mm256_setzero_si256();
            for rot in rots {
                let rb = _mm256_permutevar8x32_epi32(vb, rot);
                m = _mm256_or_si256(m, _mm256_cmpeq_epi32(va, rb));
            }
            r += (_mm256_movemask_ps(_mm256_castsi256_ps(m)) as u32).count_ones() as usize;
            let amax = *a.get_unchecked(i + V - 1);
            let bmax = *b.get_unchecked(j + V - 1);
            i += if amax <= bmax { V } else { 0 };
            j += if bmax <= amax { V } else { 0 };
        }
        (i, j, r)
    }
}

fn count_with_level(a: &[u32], b: &[u32], level: SimdLevel) -> usize {
    match level {
        SimdLevel::Scalar => count_scalar_blocked(a, b, 4),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => {
            // SAFETY: availability checked by callers.
            let (i, j, r) = unsafe { x86::count_sse(a, b) };
            r + crate::merge::branchless_count(&a[i..], &b[j..])
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            let (i, j, r) = unsafe { x86::count_avx2(a, b) };
            r + crate::merge::branchless_count(&a[i..], &b[j..])
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => {
            let (i, j, r) = unsafe { x86::count_avx512(a, b) };
            r + crate::merge::branchless_count(&a[i..], &b[j..])
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => count_scalar_blocked(a, b, 4),
    }
}

/// Intersection count at the widest available ISA.
pub fn count(a: &[u32], b: &[u32]) -> usize {
    count_with_level(a, b, SimdLevel::detect())
}

/// Intersection count at an explicit ISA level.
///
/// # Panics
/// Panics if `level` is unavailable on this CPU.
pub fn count_at(a: &[u32], b: &[u32], level: SimdLevel) -> usize {
    assert!(level.is_available(), "SIMD level {level} not available");
    count_with_level(a, b, level)
}

/// Materializing variant (scalar block extraction after the SIMD filter is
/// not on the benched path, so a plain merge is used).
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    crate::merge::intersect(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64, universe: u32) -> Vec<u32> {
        let mut state = seed | 1;
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            set.insert((state % universe as u64) as u32);
        }
        set.into_iter().collect()
    }

    #[test]
    fn scalar_blocked_matches_merge() {
        let a = gen(1000, 3, 20_000);
        let b = gen(1200, 11, 20_000);
        assert_eq!(
            count_scalar_blocked(&a, &b, 4),
            crate::merge::scalar_count(&a, &b)
        );
    }

    #[test]
    fn all_levels_match_merge() {
        let a = gen(5_000, 5, 60_000);
        let b = gen(5_000, 23, 60_000);
        let want = crate::merge::scalar_count(&a, &b);
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &b, level), want, "level={level}");
        }
    }

    #[test]
    fn non_multiple_lengths() {
        let a = gen(1003, 7, 9_000);
        let b = gen(997, 13, 9_000);
        let want = crate::merge::scalar_count(&a, &b);
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &b, level), want, "level={level}");
        }
    }

    #[test]
    fn dense_duplication_free_overlap() {
        // Identical sets: every block pair matches fully.
        let a: Vec<u32> = (0..256).collect();
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &a, level), 256, "level={level}");
        }
    }

    #[test]
    fn tiny_inputs_fall_through_to_merge() {
        let a = [1u32, 5, 7];
        let b = [5u32, 7];
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &b, level), 2, "level={level}");
        }
    }
}
