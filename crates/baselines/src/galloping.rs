//! Galloping (exponential) search intersection — Bentley & Yao, the
//! paper's `scalarGalloping` baseline.
//!
//! Each element of the smaller set is located in the larger set by doubling
//! the probe distance until overshoot, then binary-searching the bracketed
//! window: `O(n1 log(n2/n1))`, the method of choice when `n1 << n2`
//! (Table I, Fig. 11).

/// Find the first index in `b[lo..]` with `b[idx] >= x` by galloping.
#[inline]
fn gallop_lower_bound(b: &[u32], mut lo: usize, x: u32) -> usize {
    if lo >= b.len() || b[lo] >= x {
        return lo;
    }
    // Exponential phase: invariant b[lo] < x.
    let mut step = 1usize;
    while lo + step < b.len() && b[lo + step] < x {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(b.len());
    // Binary phase over (lo, hi].
    lo + 1 + b[lo + 1..hi].partition_point(|&v| v < x)
}

/// Intersection count via galloping: every element of the smaller input is
/// searched in the larger.
pub fn count(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut lo = 0usize;
    let mut r = 0usize;
    for &x in small {
        lo = gallop_lower_bound(large, lo, x);
        if lo == large.len() {
            break;
        }
        r += (large[lo] == x) as usize;
    }
    r
}

/// Materializing galloping intersection (ascending output).
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::new();
    let mut lo = 0usize;
    for &x in small {
        lo = gallop_lower_bound(large, lo, x);
        if lo == large.len() {
            break;
        }
        if large[lo] == x {
            out.push(x);
        }
    }
    out
}

/// k-way galloping count (Table I): each element of the smallest list is
/// the anchor, searched in every other list —
/// `n1 (log n2 + … + log nk)`.
pub fn kway_count(lists: &[&[u32]]) -> usize {
    assert!(!lists.is_empty(), "k-way intersection of zero lists");
    let anchor_idx = (0..lists.len())
        .min_by_key(|&i| lists[i].len())
        .expect("non-empty");
    let anchor = lists[anchor_idx];
    let mut cursors = vec![0usize; lists.len()];
    let mut r = 0usize;
    'outer: for &x in anchor {
        for (j, list) in lists.iter().enumerate() {
            if j == anchor_idx {
                continue;
            }
            let lo = gallop_lower_bound(list, cursors[j], x);
            cursors[j] = lo;
            if lo == list.len() {
                break 'outer;
            }
            if list[lo] != x {
                continue 'outer;
            }
        }
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_brackets_correctly() {
        let b = [2u32, 4, 6, 8, 10, 12, 14];
        assert_eq!(gallop_lower_bound(&b, 0, 1), 0);
        assert_eq!(gallop_lower_bound(&b, 0, 2), 0);
        assert_eq!(gallop_lower_bound(&b, 0, 7), 3);
        assert_eq!(gallop_lower_bound(&b, 0, 14), 6);
        assert_eq!(gallop_lower_bound(&b, 0, 15), 7);
        assert_eq!(gallop_lower_bound(&b, 3, 9), 4);
    }

    #[test]
    fn count_matches_merge() {
        let a: Vec<u32> = (0..200).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..600).map(|i| i * 2).collect();
        let want = crate::merge::scalar_count(&a, &b);
        assert_eq!(count(&a, &b), want);
        assert_eq!(count(&b, &a), want);
        assert_eq!(intersect(&a, &b), crate::merge::intersect(&a, &b));
    }

    #[test]
    fn skewed_inputs() {
        let small = [10u32, 500, 90_000];
        let large: Vec<u32> = (0..100_000).collect();
        assert_eq!(count(&small, &large), 3);
        assert_eq!(count(&large, &small), 3);
    }

    #[test]
    fn kway_matches_pairwise() {
        let a: Vec<u32> = (0..300).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..300).map(|i| i * 3).collect();
        let c: Vec<u32> = (0..300).map(|i| i * 5).collect();
        let ab = crate::merge::intersect(&a, &b);
        let want = crate::merge::scalar_count(&ab, &c);
        assert_eq!(kway_count(&[&a, &b, &c]), want);
    }

    #[test]
    fn empties() {
        assert_eq!(count(&[], &[1, 2, 3]), 0);
        assert_eq!(count(&[1, 2, 3], &[]), 0);
        assert_eq!(kway_count(&[&[1u32, 2][..], &[][..]]), 0);
    }
}
