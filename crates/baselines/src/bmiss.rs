//! BMiss — Inoue, Ohara & Taura, "Faster set intersection with SIMD
//! instructions by reducing branch mispredictions" (the paper's \[1\]).
//!
//! A block-based merge that decouples *filtering* from *verification*:
//! blocks of `B` elements are compared with branch-free SIMD all-pairs
//! filters, and only blocks whose filter fires are verified. Because block
//! advancement depends on a single last-element comparison (predictable)
//! rather than per-element comparisons (random for small intersections),
//! the mispredictions that dominate Listing-1-style merges disappear —
//! which is why BMiss shines precisely when the intersection is small
//! (Table I).
//!
//! This implementation follows the published algorithm's block/filter
//! structure with `B = 8` (two SSE vectors or one AVX2 vector per block);
//! the STTNI variant of the original paper is omitted (DESIGN.md §3).

use fesia_simd::SimdLevel;

/// Elements per block.
const B: usize = 8;

/// Scalar filter+verify used as the portable fallback and the verifier.
fn block_pairs_count(ab: &[u32], bb: &[u32]) -> usize {
    let mut r = 0usize;
    for &x in ab {
        for &y in bb {
            r += (x == y) as usize;
        }
    }
    r
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::B;
    use core::arch::x86_64::*;

    /// Count matches between two 8-element blocks: each element of `ab` is
    /// broadcast and compared against both halves of `bb`.
    ///
    /// # Safety
    /// Requires SSE4.2; both blocks valid for `B` reads.
    #[target_feature(enable = "sse4.2")]
    #[inline]
    pub unsafe fn block_count_sse(ab: *const u32, bb: *const u32) -> u32 {
        let b0 = _mm_loadu_si128(bb as *const __m128i);
        let b1 = _mm_loadu_si128(bb.add(4) as *const __m128i);
        let mut m0 = _mm_setzero_si128();
        let mut m1 = _mm_setzero_si128();
        for k in 0..B {
            let vx = _mm_set1_epi32(*ab.add(k) as i32);
            m0 = _mm_or_si128(m0, _mm_cmpeq_epi32(vx, b0));
            m1 = _mm_or_si128(m1, _mm_cmpeq_epi32(vx, b1));
        }
        let mask = (_mm_movemask_ps(_mm_castsi128_ps(m0))
            | (_mm_movemask_ps(_mm_castsi128_ps(m1)) << 4)) as u32;
        mask.count_ones()
    }

    /// AVX2 variant: one 8-lane vector per block.
    ///
    /// # Safety
    /// Requires AVX2; both blocks valid for `B` reads.
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn block_count_avx2(ab: *const u32, bb: *const u32) -> u32 {
        let vb = _mm256_loadu_si256(bb as *const __m256i);
        let mut m = _mm256_setzero_si256();
        for k in 0..B {
            let vx = _mm256_set1_epi32(*ab.add(k) as i32);
            m = _mm256_or_si256(m, _mm256_cmpeq_epi32(vx, vb));
        }
        (_mm256_movemask_ps(_mm256_castsi256_ps(m)) as u32).count_ones()
    }
}

fn count_with_level(a: &[u32], b: &[u32], level: SimdLevel) -> usize {
    let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
    let (na, nb) = (a.len(), b.len());
    while i + B <= na && j + B <= nb {
        r += match level {
            SimdLevel::Scalar => block_pairs_count(&a[i..i + B], &b[j..j + B]),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked by public entry points; the
            // loop guard keeps both blocks fully in bounds.
            SimdLevel::Sse => unsafe {
                x86::block_count_sse(a.as_ptr().add(i), b.as_ptr().add(j)) as usize
            },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe {
                x86::block_count_avx2(a.as_ptr().add(i), b.as_ptr().add(j)) as usize
            },
            #[cfg(not(target_arch = "x86_64"))]
            _ => block_pairs_count(&a[i..i + B], &b[j..j + B]),
        };
        let amax = a[i + B - 1];
        let bmax = b[j + B - 1];
        i += if amax <= bmax { B } else { 0 };
        j += if bmax <= amax { B } else { 0 };
    }
    r + crate::merge::branchless_count(&a[i..], &b[j..])
}

/// Intersection count at the widest available ISA.
pub fn count(a: &[u32], b: &[u32]) -> usize {
    count_with_level(a, b, SimdLevel::detect())
}

/// Intersection count at an explicit ISA level.
///
/// # Panics
/// Panics if `level` is unavailable on this CPU.
pub fn count_at(a: &[u32], b: &[u32], level: SimdLevel) -> usize {
    assert!(level.is_available(), "SIMD level {level} not available");
    count_with_level(a, b, level)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64, universe: u32) -> Vec<u32> {
        let mut state = seed | 1;
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            set.insert((state % universe as u64) as u32);
        }
        set.into_iter().collect()
    }

    #[test]
    fn all_levels_match_merge() {
        let a = gen(4_000, 9, 50_000);
        let b = gen(4_000, 21, 50_000);
        let want = crate::merge::scalar_count(&a, &b);
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &b, level), want, "level={level}");
        }
    }

    #[test]
    fn skewed_and_ragged_lengths() {
        let a = gen(137, 5, 3_000);
        let b = gen(2_013, 19, 3_000);
        let want = crate::merge::scalar_count(&a, &b);
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &b, level), want, "level={level}");
            assert_eq!(count_at(&b, &a, level), want, "level={level} swapped");
        }
    }

    #[test]
    fn identical_and_disjoint() {
        let a: Vec<u32> = (0..64).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..64).map(|i| i * 3 + 1).collect();
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &a, level), 64, "level={level}");
            assert_eq!(count_at(&a, &b, level), 0, "level={level}");
        }
    }

    #[test]
    fn sub_block_inputs() {
        let a = [3u32, 5];
        let b = [1u32, 3, 5, 7];
        for level in SimdLevel::available_levels() {
            assert_eq!(count_at(&a, &b, level), 2, "level={level}");
        }
    }
}
