//! Hash-based intersection (paper §II-A): build a hash table over one set,
//! probe with the other — `O(min(n1, n2))`, the complexity reference for
//! the skew experiment (Fig. 11).
//!
//! A purpose-built open-addressing table (linear probing, power-of-two
//! capacity, multiplicative hashing) rather than `std::collections::HashSet`
//! so the probe path is a handful of instructions, as any serious
//! hash-intersection baseline would use.

/// Slot sentinel: `u32::MAX` marks an empty slot. `u32::MAX` itself is
/// stored out of band (the FESIA element domain excludes it anyway, but the
/// baseline stays correct for the full `u32` range).
const EMPTY: u32 = u32::MAX;

/// An immutable open-addressing hash set over `u32` keys.
#[derive(Debug, Clone)]
pub struct U32HashSet {
    slots: Vec<u32>,
    mask: usize,
    has_max: bool,
    len: usize,
}

#[inline]
fn mix(x: u32) -> u32 {
    // fmix32 (MurmurHash3 finalizer).
    let mut x = x ^ (x >> 16);
    x = x.wrapping_mul(0x85eb_ca6b);
    x ^= x >> 13;
    x = x.wrapping_mul(0xc2b2_ae35);
    x ^ (x >> 16)
}

impl U32HashSet {
    /// Build from a duplicate-free slice at ~50% load factor.
    pub fn build(keys: &[u32]) -> U32HashSet {
        let cap = (keys.len() * 2).next_power_of_two().max(8);
        let mut slots = vec![EMPTY; cap];
        let mask = cap - 1;
        let mut has_max = false;
        for &k in keys {
            if k == EMPTY {
                has_max = true;
                continue;
            }
            let mut idx = mix(k) as usize & mask;
            while slots[idx] != EMPTY {
                debug_assert_ne!(slots[idx], k, "duplicate key {k}");
                idx = (idx + 1) & mask;
            }
            slots[idx] = k;
        }
        U32HashSet {
            slots,
            mask,
            has_max,
            len: keys.len(),
        }
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership probe.
    #[inline]
    pub fn contains(&self, k: u32) -> bool {
        if k == EMPTY {
            return self.has_max;
        }
        let mut idx = mix(k) as usize & self.mask;
        loop {
            let s = self.slots[idx];
            if s == k {
                return true;
            }
            if s == EMPTY {
                return false;
            }
            idx = (idx + 1) & self.mask;
        }
    }
}

/// Intersection count: builds the table over the smaller input and probes
/// with the larger, the classical end-to-end scheme. When the build phase
/// is amortized offline (as in the paper's skew experiment), use
/// [`count_prebuilt`] and probe with the *smaller* side instead — that is
/// the `O(min(n1, n2))` configuration of Table I.
pub fn count(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let table = U32HashSet::build(small);
    large.iter().filter(|&&x| table.contains(x)).count()
}

/// Probe `probe` against a prebuilt table (build cost excluded — the
/// offline/online split used in the paper's skew experiment).
pub fn count_prebuilt(probe: &[u32], table: &U32HashSet) -> usize {
    probe.iter().filter(|&&x| table.contains(x)).count()
}

/// Materializing variant.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let table = U32HashSet::build(small);
    let mut out: Vec<u32> = large
        .iter()
        .copied()
        .filter(|&x| table.contains(x))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe() {
        let keys = [1u32, 5, 9, 100, 1000];
        let t = U32HashSet::build(&keys);
        assert_eq!(t.len(), 5);
        for &k in &keys {
            assert!(t.contains(k));
        }
        for k in [0u32, 2, 99, 1001] {
            assert!(!t.contains(k));
        }
    }

    #[test]
    fn max_value_is_handled() {
        let t = U32HashSet::build(&[7, u32::MAX]);
        assert!(t.contains(u32::MAX));
        assert!(t.contains(7));
        let t2 = U32HashSet::build(&[7]);
        assert!(!t2.contains(u32::MAX));
    }

    #[test]
    fn count_matches_merge() {
        let a: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..1000).map(|i| i * 5).collect();
        let want = crate::merge::scalar_count(&a, &b);
        assert_eq!(count(&a, &b), want);
        assert_eq!(intersect(&a, &b), crate::merge::intersect(&a, &b));
    }

    #[test]
    fn prebuilt_probe_agrees() {
        let small: Vec<u32> = (0..100).map(|i| i * 7).collect();
        let large: Vec<u32> = (0..5000).collect();
        let t = U32HashSet::build(&large);
        assert_eq!(
            count_prebuilt(&small, &t),
            crate::merge::scalar_count(&small, &large)
        );
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(count(&[], &[1, 2]), 0);
        assert_eq!(count(&[1, 2], &[]), 0);
        assert!(U32HashSet::build(&[]).is_empty());
    }

    #[test]
    fn collision_chains_resolve() {
        // Force a tiny table with long probe chains.
        let keys: Vec<u32> = (0..6).collect();
        let t = U32HashSet::build(&keys);
        for &k in &keys {
            assert!(t.contains(k));
        }
        assert!(!t.contains(6));
    }
}
