//! Lane-mask primitives for FESIA's bitmap-level intersection (paper §IV).
//!
//! Step 1 of FESIA streams two bitmaps, ANDs them (`vandps` in the paper),
//! compares every `s`-bit *segment lane* against zero (`pcmpeq*`), extracts a
//! dense mask of the non-zero lanes (`pextrb`/`movemask`), and iterates its
//! set bits (`tzcnt`). This module implements that pipeline for every
//! [`SimdLevel`]:
//!
//! * **Scalar** — 64-bit word tricks (the classic "has-zero-byte" carry
//!   trick) so the fallback still processes 8 lanes per iteration.
//! * **SSE** — 16 bytes per iteration via `_mm_cmpeq_epi8` + `movemask`.
//! * **AVX2** — 32 bytes per iteration.
//! * **AVX-512** — 64 bytes per iteration via `_mm512_test_epi8_mask`,
//!   which yields the non-zero-lane mask in a single instruction.
//!
//! Both supported segment widths (`s = 8` and `s = 16` bits) are provided.
//!
//! # Preconditions
//!
//! All functions require `a.len() == b.len()` and `a.len() % 64 == 0`; the
//! segmented-set builder guarantees this by enforcing a minimum bitmap of
//! 512 bits. The *folded* variants additionally require `small.len()` to be
//! a power of two (at least 64), matching the paper's power-of-two bitmap
//! rule for sets of different sizes (§III-C).

use crate::features::SimdLevel;
use crate::prefetch::prefetch_read;
use crate::util::SetBits;

/// Bytes of bitmap covered by one summary bit: one 512-bit SIMD block.
pub const SUMMARY_BLOCK_BYTES: usize = 64;

/// How many survivor blocks ahead the pruned scan keeps in flight. One
/// summary bit covers exactly one cache line per side, so the lookahead
/// is a plain line prefetch — deep enough to hide a memory round-trip,
/// shallow enough that lines are not evicted before use.
const PRUNE_PREFETCH_DIST: usize = 16;

/// How step 1 combines the two bitmaps before the non-zero-lane extract.
///
/// `And` is the paper's intersection filter. The other combiners support
/// the materializing set-algebra ops: an `Or` scan visits every segment
/// that is non-empty on *either* side, which is the sound driver for
/// union / difference / xor at the element level (element-level ANDNOT or
/// XOR scans would be unsound — two distinct elements can hash to the
/// same bit position, making the lanes equal on both sides even though
/// the symmetric difference is non-empty). `AndNotB` and `Xor` are still
/// provided for bitmap-level consumers and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskOp {
    /// `a & b` — lanes where both sides have bits (intersection filter).
    And,
    /// `a | b` — lanes where either side has bits (union superset scan).
    Or,
    /// `a & !b` — lanes where `a` has bits that `b` lacks.
    AndNotB,
    /// `a ^ b` — lanes where the sides differ.
    Xor,
}

impl MaskOp {
    /// Apply the combiner to one 64-bit word pair.
    #[inline(always)]
    pub fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            MaskOp::And => a & b,
            MaskOp::Or => a | b,
            MaskOp::AndNotB => a & !b,
            MaskOp::Xor => a ^ b,
        }
    }

    /// Short lowercase name (for logs and bench labels).
    pub fn name(self) -> &'static str {
        match self {
            MaskOp::And => "and",
            MaskOp::Or => "or",
            MaskOp::AndNotB => "andnot",
            MaskOp::Xor => "xor",
        }
    }
}

/// Which segment-lane width the bitmap uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneWidth {
    /// 8-bit segments: one byte per segment.
    U8,
    /// 16-bit segments: two bytes per segment.
    U16,
}

impl LaneWidth {
    /// Bytes per segment lane.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            LaneWidth::U8 => 1,
            LaneWidth::U16 => 2,
        }
    }

    /// Bits per segment lane (the paper's `s`).
    #[inline]
    pub const fn bits(self) -> usize {
        self.bytes() * 8
    }
}

// ---------------------------------------------------------------------------
// Scalar word primitives (exported for tests and for the scalar path).
// ---------------------------------------------------------------------------

const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
const HI1: u64 = 0x8080_8080_8080_8080;
const LO15: u64 = 0x7fff_7fff_7fff_7fff;
const HI16: u64 = 0x8000_8000_8000_8000;

/// For each byte lane of `w`, set bit `8*i + 7` iff byte `i` is non-zero.
///
/// Classic carry trick: adding `0x7f` to a byte carries into bit 7 iff any
/// of bits 0..=6 are set; OR-ing `w` back in covers bit 7 itself.
#[inline]
pub fn nonzero_byte_flags(w: u64) -> u64 {
    (((w & LO7).wrapping_add(LO7)) | w) & HI1
}

/// For each 16-bit lane of `w`, set bit `16*i + 15` iff lane `i` is non-zero.
#[inline]
pub fn nonzero_u16_flags(w: u64) -> u64 {
    (((w & LO15).wrapping_add(LO15)) | w) & HI16
}

// ---------------------------------------------------------------------------
// Per-ISA slice processors. Each visits every non-zero AND lane, passing the
// lane (= segment) index to `f`. `IDX` maps the large-side lane index to the
// small-side byte offset for the folded case; for the same-size case it is
// the identity.
// ---------------------------------------------------------------------------

#[inline(always)]
fn scalar_impl<F: FnMut(usize)>(
    op: MaskOp,
    lane: LaneWidth,
    a: &[u8],
    b: &[u8],
    small_mask: usize,
    f: &mut F,
) {
    debug_assert_eq!(a.len() % 8, 0);
    let words = a.len() / 8;
    for wi in 0..words {
        let off_a = wi * 8;
        let off_b = off_a & small_mask;
        let wa = u64::from_le_bytes(a[off_a..off_a + 8].try_into().unwrap());
        let wb = u64::from_le_bytes(b[off_b..off_b + 8].try_into().unwrap());
        let v = op.apply_u64(wa, wb);
        if v == 0 {
            continue;
        }
        match lane {
            LaneWidth::U8 => {
                for bit in SetBits(nonzero_byte_flags(v)) {
                    f(off_a + (bit as usize >> 3));
                }
            }
            LaneWidth::U16 => {
                for bit in SetBits(nonzero_u16_flags(v)) {
                    f(off_a / 2 + (bit as usize >> 4));
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// # Safety
    /// Requires SSE4.2. `a.len() == b.len()`, `a.len() % 16 == 0`;
    /// `small_mask + 1` must be a power of two multiple of 16 covering `b`.
    #[target_feature(enable = "sse4.2")]
    pub unsafe fn sse_impl<F: FnMut(usize)>(
        op: MaskOp,
        lane: LaneWidth,
        a: &[u8],
        b: &[u8],
        small_mask: usize,
        f: &mut F,
    ) {
        let zero = _mm_setzero_si128();
        let blocks = a.len() / 16;
        for bi in 0..blocks {
            let off = bi * 16;
            let va = _mm_loadu_si128(a.as_ptr().add(off) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(off & small_mask) as *const __m128i);
            let v = match op {
                MaskOp::And => _mm_and_si128(va, vb),
                MaskOp::Or => _mm_or_si128(va, vb),
                // andnot computes !first & second, so the operands swap.
                MaskOp::AndNotB => _mm_andnot_si128(vb, va),
                MaskOp::Xor => _mm_xor_si128(va, vb),
            };
            match lane {
                LaneWidth::U8 => {
                    let zmask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)) as u32;
                    let nz = !zmask & 0xFFFF;
                    for bit in SetBits(nz as u64) {
                        f(off + bit as usize);
                    }
                }
                LaneWidth::U16 => {
                    let zmask = _mm_movemask_epi8(_mm_cmpeq_epi16(v, zero)) as u32;
                    // Two mask bits per 16-bit lane; test the even bit.
                    let nz = !zmask & 0x5555;
                    for bit in SetBits(nz as u64) {
                        f(off / 2 + (bit as usize >> 1));
                    }
                }
            }
        }
    }

    /// # Safety
    /// Requires AVX2. Same slice preconditions with 32-byte blocks.
    #[target_feature(enable = "avx2")]
    pub unsafe fn avx2_impl<F: FnMut(usize)>(
        op: MaskOp,
        lane: LaneWidth,
        a: &[u8],
        b: &[u8],
        small_mask: usize,
        f: &mut F,
    ) {
        let zero = _mm256_setzero_si256();
        let blocks = a.len() / 32;
        for bi in 0..blocks {
            let off = bi * 32;
            let va = _mm256_loadu_si256(a.as_ptr().add(off) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(off & small_mask) as *const __m256i);
            let v = match op {
                MaskOp::And => _mm256_and_si256(va, vb),
                MaskOp::Or => _mm256_or_si256(va, vb),
                MaskOp::AndNotB => _mm256_andnot_si256(vb, va),
                MaskOp::Xor => _mm256_xor_si256(va, vb),
            };
            match lane {
                LaneWidth::U8 => {
                    let zmask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)) as u32;
                    let nz = !zmask;
                    for bit in SetBits(nz as u64) {
                        f(off + bit as usize);
                    }
                }
                LaneWidth::U16 => {
                    let zmask = _mm256_movemask_epi8(_mm256_cmpeq_epi16(v, zero)) as u32;
                    let nz = !zmask & 0x5555_5555;
                    for bit in SetBits(nz as u64) {
                        f(off / 2 + (bit as usize >> 1));
                    }
                }
            }
        }
    }

    /// # Safety
    /// Requires AVX-512 F+BW. Same slice preconditions with 64-byte blocks.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn avx512_impl<F: FnMut(usize)>(
        op: MaskOp,
        lane: LaneWidth,
        a: &[u8],
        b: &[u8],
        small_mask: usize,
        f: &mut F,
    ) {
        let blocks = a.len() / 64;
        for bi in 0..blocks {
            let off = bi * 64;
            let va = _mm512_loadu_si512(a.as_ptr().add(off) as *const _);
            let vb = _mm512_loadu_si512(b.as_ptr().add(off & small_mask) as *const _);
            let v = match op {
                MaskOp::And => _mm512_and_si512(va, vb),
                MaskOp::Or => _mm512_or_si512(va, vb),
                MaskOp::AndNotB => _mm512_andnot_si512(vb, va),
                MaskOp::Xor => _mm512_xor_si512(va, vb),
            };
            match lane {
                LaneWidth::U8 => {
                    let nz = _mm512_test_epi8_mask(v, v);
                    for bit in SetBits(nz) {
                        f(off + bit as usize);
                    }
                }
                LaneWidth::U16 => {
                    let nz = _mm512_test_epi16_mask(v, v);
                    for bit in SetBits(nz as u64) {
                        f(off / 2 + bit as usize);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Safe dispatchers.
// ---------------------------------------------------------------------------

fn dispatch<F: FnMut(usize)>(
    level: SimdLevel,
    op: MaskOp,
    lane: LaneWidth,
    a: &[u8],
    b: &[u8],
    small_mask: usize,
    mut f: F,
) {
    assert_eq!(
        a.len() % 64,
        0,
        "bitmap length must be a multiple of 64 bytes"
    );
    assert!(
        level.is_available(),
        "SIMD level {level} not available on this CPU"
    );
    match level {
        SimdLevel::Scalar => scalar_impl(op, lane, a, b, small_mask, &mut f),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => unsafe { x86::sse_impl(op, lane, a, b, small_mask, &mut f) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::avx2_impl(op, lane, a, b, small_mask, &mut f) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { x86::avx512_impl(op, lane, a, b, small_mask, &mut f) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar level reported available on non-x86_64"),
    }
}

/// AND two equal-length bitmaps and invoke `f(segment_index)` for every
/// non-zero `s`-bit lane of the result (FESIA step 1, same bitmap size).
///
/// # Panics
/// Panics if the lengths differ, are not multiples of 64 bytes, or `level`
/// is unavailable on this CPU.
pub fn for_each_nonzero_lane<F: FnMut(usize)>(
    level: SimdLevel,
    lane: LaneWidth,
    a: &[u8],
    b: &[u8],
    f: F,
) {
    for_each_nonzero_lane_op(level, MaskOp::And, lane, a, b, f);
}

/// [`for_each_nonzero_lane`] with an explicit bitmap combiner: combine two
/// equal-length bitmaps with `op` and invoke `f(segment_index)` for every
/// non-zero `s`-bit lane of the result.
///
/// # Panics
/// Panics on the preconditions of [`for_each_nonzero_lane`].
pub fn for_each_nonzero_lane_op<F: FnMut(usize)>(
    level: SimdLevel,
    op: MaskOp,
    lane: LaneWidth,
    a: &[u8],
    b: &[u8],
    f: F,
) {
    assert_eq!(a.len(), b.len(), "bitmaps must have equal length");
    dispatch(level, op, lane, a, b, usize::MAX, f);
}

/// AND a large bitmap against a smaller power-of-two bitmap that logically
/// tiles it (paper §III-C), invoking `f(large_segment_index)` for every
/// non-zero lane. The small-side lane is `large_index mod small_lanes`.
///
/// # Panics
/// Panics if `small.len()` is not a power of two at least 64, if `large` is
/// shorter than `small`, or on the shared preconditions of
/// [`for_each_nonzero_lane`].
pub fn for_each_nonzero_lane_folded<F: FnMut(usize)>(
    level: SimdLevel,
    lane: LaneWidth,
    large: &[u8],
    small: &[u8],
    f: F,
) {
    for_each_nonzero_lane_folded_op(level, MaskOp::And, lane, large, small, f);
}

/// [`for_each_nonzero_lane_folded`] with an explicit bitmap combiner: the
/// small bitmap logically tiles the large one and each large lane is
/// combined with its folded small lane via `op`.
///
/// # Panics
/// Panics on the preconditions of [`for_each_nonzero_lane_folded`].
pub fn for_each_nonzero_lane_folded_op<F: FnMut(usize)>(
    level: SimdLevel,
    op: MaskOp,
    lane: LaneWidth,
    large: &[u8],
    small: &[u8],
    f: F,
) {
    assert!(
        small.len().is_power_of_two() && small.len() >= 64,
        "small bitmap must be a power of two of at least 64 bytes"
    );
    assert!(
        large.len() >= small.len(),
        "large bitmap shorter than small"
    );
    dispatch(level, op, lane, large, small, small.len() - 1, f);
}

// ---------------------------------------------------------------------------
// Word-level bitmap kernels (container tier: plain value-domain bitmaps).
//
// Unlike the lane scans above, these operate on *value-domain* `u64` word
// bitmaps (bit `i` of word `w` ⇔ value `64*w + i` present) where every set
// bit is exact — no hashing, no segment lanes. Combining two such bitmaps
// with any [`MaskOp`] and popcounting the result *is* the set operation's
// cardinality, so all four ops are sound here (the Or-scan restriction of
// the hashed path does not apply). The popcount uses the Harley-Seal-style
// nibble LUT (`pshufb` on a 0..=4 table + `psadbw` accumulation), which
// needs no `popcnt` CPUID bit beyond the baseline ISA of each level.
// ---------------------------------------------------------------------------

#[inline(always)]
fn word_scalar_impl(op: MaskOp, a: &[u64], b: &[u64], out: *mut u64) -> u64 {
    let mut ones = 0u64;
    for i in 0..a.len() {
        let v = op.apply_u64(a[i], b[i]);
        ones += u64::from(v.count_ones());
        if !out.is_null() {
            // SAFETY: caller guarantees `out` covers `a.len()` words.
            unsafe { *out.add(i) = v };
        }
    }
    ones
}

#[cfg(target_arch = "x86_64")]
mod word_x86 {
    use super::MaskOp;
    use core::arch::x86_64::*;

    /// # Safety
    /// Requires SSE4.2. `a`/`b` must hold `words` readable `u64`s with
    /// `words % 2 == 0`; `out` is null or covers `words` writable `u64`s.
    #[target_feature(enable = "sse4.2")]
    pub unsafe fn word_sse(
        op: MaskOp,
        a: *const u64,
        b: *const u64,
        words: usize,
        out: *mut u64,
    ) -> u64 {
        let lut = _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
        let low = _mm_set1_epi8(0x0f);
        let zero = _mm_setzero_si128();
        let mut acc = zero;
        let mut i = 0;
        while i < words {
            let va = _mm_loadu_si128(a.add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.add(i) as *const __m128i);
            let v = match op {
                MaskOp::And => _mm_and_si128(va, vb),
                MaskOp::Or => _mm_or_si128(va, vb),
                // andnot computes !first & second, so the operands swap.
                MaskOp::AndNotB => _mm_andnot_si128(vb, va),
                MaskOp::Xor => _mm_xor_si128(va, vb),
            };
            if !out.is_null() {
                _mm_storeu_si128(out.add(i) as *mut __m128i, v);
            }
            let lo = _mm_shuffle_epi8(lut, _mm_and_si128(v, low));
            let hi = _mm_shuffle_epi8(lut, _mm_and_si128(_mm_srli_epi16(v, 4), low));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(_mm_add_epi8(lo, hi), zero));
            i += 2;
        }
        let mut lanes = [0u64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc);
        lanes[0] + lanes[1]
    }

    /// # Safety
    /// Requires AVX2. Same contract as [`word_sse`] with `words % 4 == 0`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn word_avx2(
        op: MaskOp,
        a: *const u64,
        b: *const u64,
        words: usize,
        out: *mut u64,
    ) -> u64 {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        let mut acc = zero;
        let mut i = 0;
        while i < words {
            let va = _mm256_loadu_si256(a.add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.add(i) as *const __m256i);
            let v = match op {
                MaskOp::And => _mm256_and_si256(va, vb),
                MaskOp::Or => _mm256_or_si256(va, vb),
                MaskOp::AndNotB => _mm256_andnot_si256(vb, va),
                MaskOp::Xor => _mm256_xor_si256(va, vb),
            };
            if !out.is_null() {
                _mm256_storeu_si256(out.add(i) as *mut __m256i, v);
            }
            let lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low));
            let hi = _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), low));
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi), zero));
            i += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        lanes[0] + lanes[1] + lanes[2] + lanes[3]
    }

    /// # Safety
    /// Requires AVX-512 F+BW. Same contract as [`word_sse`] with
    /// `words % 8 == 0`.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn word_avx512(
        op: MaskOp,
        a: *const u64,
        b: *const u64,
        words: usize,
        out: *mut u64,
    ) -> u64 {
        let lut = _mm512_broadcast_i32x4(_mm_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        ));
        let low = _mm512_set1_epi8(0x0f);
        let zero = _mm512_setzero_si512();
        let mut acc = zero;
        let mut i = 0;
        while i < words {
            let va = _mm512_loadu_si512(a.add(i) as *const _);
            let vb = _mm512_loadu_si512(b.add(i) as *const _);
            let v = match op {
                MaskOp::And => _mm512_and_si512(va, vb),
                MaskOp::Or => _mm512_or_si512(va, vb),
                MaskOp::AndNotB => _mm512_andnot_si512(vb, va),
                MaskOp::Xor => _mm512_xor_si512(va, vb),
            };
            if !out.is_null() {
                _mm512_storeu_si512(out.add(i) as *mut _, v);
            }
            let lo = _mm512_shuffle_epi8(lut, _mm512_and_si512(v, low));
            let hi = _mm512_shuffle_epi8(lut, _mm512_and_si512(_mm512_srli_epi64(v, 4), low));
            acc = _mm512_add_epi64(acc, _mm512_sad_epu8(_mm512_add_epi8(lo, hi), zero));
            i += 8;
        }
        _mm512_reduce_add_epi64(acc) as u64
    }
}

fn word_dispatch(level: SimdLevel, op: MaskOp, a: &[u64], b: &[u64], out: *mut u64) -> u64 {
    assert_eq!(a.len(), b.len(), "word bitmaps must have equal length");
    assert_eq!(
        a.len() % 8,
        0,
        "word bitmap length must be a multiple of 8 words (64 bytes)"
    );
    assert!(
        level.is_available(),
        "SIMD level {level} not available on this CPU"
    );
    match level {
        SimdLevel::Scalar => word_scalar_impl(op, a, b, out),
        // SAFETY: availability asserted above; lengths are multiples of 8
        // words, covering every per-ISA block size; `out` (when non-null)
        // is sized by the safe wrappers.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => unsafe { word_x86::word_sse(op, a.as_ptr(), b.as_ptr(), a.len(), out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { word_x86::word_avx2(op, a.as_ptr(), b.as_ptr(), a.len(), out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe {
            word_x86::word_avx512(op, a.as_ptr(), b.as_ptr(), a.len(), out)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar level reported available on non-x86_64"),
    }
}

/// Combine two equal-length value-domain word bitmaps with `op` and return
/// the popcount of the result without materializing it. For `MaskOp::And`
/// this is the exact intersection cardinality of the two bitmaps.
///
/// # Panics
/// Panics if the lengths differ, are not multiples of 8 words (64 bytes),
/// or `level` is unavailable on this CPU.
pub fn word_op_count(level: SimdLevel, op: MaskOp, a: &[u64], b: &[u64]) -> u64 {
    word_dispatch(level, op, a, b, core::ptr::null_mut())
}

/// Combine two equal-length value-domain word bitmaps with `op`, store the
/// combined words into `out`, and return the popcount of the result.
///
/// # Panics
/// Panics on the preconditions of [`word_op_count`], or if `out` is not
/// exactly as long as `a`.
pub fn word_op_into(level: SimdLevel, op: MaskOp, a: &[u64], b: &[u64], out: &mut [u64]) -> u64 {
    assert_eq!(out.len(), a.len(), "output must match input length");
    word_dispatch(level, op, a, b, out.as_mut_ptr())
}

// ---------------------------------------------------------------------------
// Summary bitmaps and the pruned scan (hierarchical two-level filtering).
// ---------------------------------------------------------------------------

/// Number of `u64` summary words covering a bitmap of `bitmap_len` bytes.
#[inline]
pub const fn summary_len(bitmap_len: usize) -> usize {
    bitmap_len.div_ceil(SUMMARY_BLOCK_BYTES).div_ceil(64)
}

/// Build the one-bit-per-block summary of `bitmap`: bit `i` of the result
/// (LSB-first within each `u64` word) is set iff the `i`-th
/// [`SUMMARY_BLOCK_BYTES`]-byte block of the bitmap contains any set bit.
/// A trailing partial block (possible only for bitmaps below the
/// segmented-set 64-byte floor) gets the final bit.
pub fn build_block_summary(bitmap: &[u8]) -> Vec<u64> {
    let mut out = vec![0u64; summary_len(bitmap.len())];
    for (blk, chunk) in bitmap.chunks(SUMMARY_BLOCK_BYTES).enumerate() {
        if chunk.iter().any(|&x| x != 0) {
            out[blk / 64] |= 1 << (blk % 64);
        }
    }
    out
}

/// What a pruned scan did: how many blocks the summary AND covered and how
/// many actually had to be loaded. `blocks - visited` is the number of
/// 64-byte bitmap loads (per side) the summary level saved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Total 512-bit blocks of the (larger) bitmap.
    pub blocks: usize,
    /// Blocks whose summary bits overlapped and were scanned in full.
    pub visited: usize,
}

impl PruneStats {
    /// Blocks skipped without touching the full bitmaps.
    #[inline]
    pub fn skipped(&self) -> usize {
        self.blocks - self.visited
    }
}

/// Replicate the low `bits` bits of `pattern` across a full `u64`.
/// `bits` must be a power of two below 64.
fn replicate_low_bits(pattern: u64, bits: usize) -> u64 {
    debug_assert!(bits.is_power_of_two() && bits < 64);
    let mut rep = pattern & ((1u64 << bits) - 1);
    let mut b = bits;
    while b < 64 {
        rep |= rep << b;
        b <<= 1;
    }
    rep
}

/// One 64-byte block of the main scan, dispatched without re-checking
/// availability (asserted once by [`dispatch_pruned`]).
#[inline(always)]
fn scan_block<F: FnMut(usize)>(level: SimdLevel, lane: LaneWidth, a: &[u8], b: &[u8], f: &mut F) {
    // Summary pruning is sound only for the AND combiner (a block that is
    // zero on either side cannot contribute an intersection lane, but it
    // can still contribute OR / ANDNOT / XOR lanes), so the pruned scan is
    // hardwired to MaskOp::And.
    match level {
        SimdLevel::Scalar => scalar_impl(MaskOp::And, lane, a, b, usize::MAX, f),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => unsafe { x86::sse_impl(MaskOp::And, lane, a, b, usize::MAX, f) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::avx2_impl(MaskOp::And, lane, a, b, usize::MAX, f) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { x86::avx512_impl(MaskOp::And, lane, a, b, usize::MAX, f) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar level reported available on non-x86_64"),
    }
}

#[allow(clippy::too_many_arguments)] // internal: both public wrappers share it
fn dispatch_pruned<F: FnMut(usize)>(
    level: SimdLevel,
    lane: LaneWidth,
    a: &[u8],
    b: &[u8],
    sum_a: &[u64],
    sum_b: &[u64],
    small_mask: usize,
    mut f: F,
) -> PruneStats {
    assert_eq!(
        a.len() % 64,
        0,
        "bitmap length must be a multiple of 64 bytes"
    );
    assert!(
        level.is_available(),
        "SIMD level {level} not available on this CPU"
    );
    let blocks = a.len() / SUMMARY_BLOCK_BYTES;
    let small_blocks = b.len() / SUMMARY_BLOCK_BYTES;
    assert_eq!(sum_a.len(), summary_len(a.len()), "summary/bitmap mismatch");
    assert_eq!(sum_b.len(), summary_len(b.len()), "summary/bitmap mismatch");

    // Phase A: AND the summaries into a survivor-block list. The small
    // side's summary logically tiles the large one exactly as the bitmap
    // does; word-granular tiling needs no per-bit work because both block
    // counts are powers of two. A trailing partial summary word is safe
    // unmasked: the builder leaves its invalid high bits zero, so the AND
    // can never produce an out-of-range block index.
    let mut survivors: Vec<u32> = Vec::new();
    if a.len() == b.len() {
        for (w, (&wa, &wb)) in sum_a.iter().zip(sum_b).enumerate() {
            for bit in SetBits(wa & wb) {
                survivors.push((w * 64 + bit as usize) as u32);
            }
        }
    } else if small_blocks >= 64 {
        let tile_words = small_blocks / 64;
        for (w, &wa) in sum_a.iter().enumerate() {
            for bit in SetBits(wa & sum_b[w % tile_words]) {
                survivors.push((w * 64 + bit as usize) as u32);
            }
        }
    } else {
        // The whole small summary fits in a sub-word pattern; replicating
        // it across a u64 makes every large word AND against the same
        // tiled word.
        let rep = replicate_low_bits(sum_b[0], small_blocks);
        for (w, &wa) in sum_a.iter().enumerate() {
            for bit in SetBits(wa & rep) {
                survivors.push((w * 64 + bit as usize) as u32);
            }
        }
    }

    // Phase B: scan only the surviving blocks, keeping both sides'
    // cache lines PRUNE_PREFETCH_DIST survivors ahead in flight (the
    // summary AND destroys the sequential access pattern the hardware
    // prefetcher relied on, so the lookahead is explicit).
    for (k, &blk) in survivors.iter().enumerate() {
        if k + PRUNE_PREFETCH_DIST < survivors.len() {
            let ahead = survivors[k + PRUNE_PREFETCH_DIST] as usize * SUMMARY_BLOCK_BYTES;
            prefetch_read(a[ahead..].as_ptr());
            prefetch_read(b[ahead & small_mask..].as_ptr());
        }
        let off_a = blk as usize * SUMMARY_BLOCK_BYTES;
        let off_b = off_a & small_mask;
        let base = off_a / lane.bytes();
        scan_block(
            level,
            lane,
            &a[off_a..off_a + SUMMARY_BLOCK_BYTES],
            &b[off_b..off_b + SUMMARY_BLOCK_BYTES],
            &mut |i| f(base + i),
        );
    }
    PruneStats {
        blocks,
        visited: survivors.len(),
    }
}

/// [`for_each_nonzero_lane`] with two-level pruning: AND the one-bit-per-
/// block summaries first and scan only the full-bitmap blocks whose
/// summary bits overlap. Visits exactly the lanes the unpruned scan
/// visits (a lane can only be non-zero inside a block that is non-zero on
/// both sides) and returns how many blocks the summary level skipped.
///
/// # Panics
/// Panics on the preconditions of [`for_each_nonzero_lane`], or if either
/// summary does not match its bitmap's length
/// (see [`build_block_summary`]).
pub fn for_each_nonzero_lane_pruned<F: FnMut(usize)>(
    level: SimdLevel,
    lane: LaneWidth,
    a: &[u8],
    b: &[u8],
    sum_a: &[u64],
    sum_b: &[u64],
    f: F,
) -> PruneStats {
    assert_eq!(a.len(), b.len(), "bitmaps must have equal length");
    dispatch_pruned(level, lane, a, b, sum_a, sum_b, usize::MAX, f)
}

/// [`for_each_nonzero_lane_folded`] with two-level pruning: the small
/// summary tiles the large one block-for-block, exactly as the small
/// bitmap tiles the large bitmap.
///
/// # Panics
/// Panics on the preconditions of [`for_each_nonzero_lane_folded`] or on
/// a summary/bitmap length mismatch.
pub fn for_each_nonzero_lane_folded_pruned<F: FnMut(usize)>(
    level: SimdLevel,
    lane: LaneWidth,
    large: &[u8],
    small: &[u8],
    sum_large: &[u64],
    sum_small: &[u64],
    f: F,
) -> PruneStats {
    assert!(
        small.len().is_power_of_two() && small.len() >= 64,
        "small bitmap must be a power of two of at least 64 bytes"
    );
    assert!(
        large.len() >= small.len(),
        "large bitmap shorter than small"
    );
    dispatch_pruned(
        level,
        lane,
        large,
        small,
        sum_large,
        sum_small,
        small.len() - 1,
        f,
    )
}

// ---------------------------------------------------------------------------
// Summary-level threshold filter (tier 2 of the similarity-join cascade).
// ---------------------------------------------------------------------------

/// Walk the AND of two block summaries and accumulate, per surviving
/// block, the caller-supplied bound `block_min_pop(large_blk, small_blk)`
/// on how many intersection elements that block pair can contribute
/// (`min` of the two sides' exact block populations is sound: every
/// common element occupies the same block position on both sides, folded
/// or not, so a block's contribution is capped by either side's count).
///
/// Returns `Some(bound)` — a sound upper bound on |A ∩ B|, strictly below
/// `threshold` — when the scan completes without reaching `threshold`,
/// i.e. the pair can be **rejected** with no segment work at all. Returns
/// `None` ("cannot reject") as soon as the running bound reaches
/// `threshold`, which on non-rejectable pairs keeps the filter cost
/// proportional to the threshold rather than to the bitmap size.
///
/// The small summary logically tiles the large one exactly as the bitmaps
/// do (see [`for_each_nonzero_lane_folded`]); pass equal block counts for
/// the same-size case. Invalid high bits of a trailing partial summary
/// word must be zero ([`build_block_summary`] guarantees this), so the
/// AND can never surface an out-of-range block index.
///
/// # Panics
/// Panics if `small_blocks` is zero, not a power of two, or exceeds the
/// large side's block count implied by `sum_large`.
pub fn summary_min_bound<F: FnMut(usize, usize) -> u64>(
    sum_large: &[u64],
    sum_small: &[u64],
    small_blocks: usize,
    threshold: u64,
    mut block_min_pop: F,
) -> Option<u64> {
    assert!(
        small_blocks.is_power_of_two(),
        "small block count must be a power of two"
    );
    assert!(
        sum_large.len() * 64 >= small_blocks && sum_small.len() == small_blocks.div_ceil(64),
        "summary/block-count mismatch"
    );
    if threshold == 0 {
        return None; // every pair meets a zero threshold
    }
    let mut bound = 0u64;
    if small_blocks >= 64 {
        // The small summary is whole words; word w of the large summary
        // tiles against small word `w mod tile_words`, and matching bits
        // within a word pair are the same block position on both sides.
        let tile_words = small_blocks / 64;
        for (w, &wl) in sum_large.iter().enumerate() {
            let sw = w % tile_words;
            let v = wl & sum_small[sw];
            if v == 0 {
                continue;
            }
            for bit in SetBits(v) {
                bound += block_min_pop(w * 64 + bit as usize, sw * 64 + bit as usize);
                if bound >= threshold {
                    return None;
                }
            }
        }
    } else {
        // The whole small summary is a sub-word pattern; replicate it so
        // every large word ANDs against the same tiled word. The small
        // block index is `bit mod small_blocks` because `small_blocks`
        // divides 64.
        let rep = replicate_low_bits(sum_small[0], small_blocks);
        for (w, &wl) in sum_large.iter().enumerate() {
            let v = wl & rep;
            if v == 0 {
                continue;
            }
            for bit in SetBits(v) {
                bound += block_min_pop(w * 64 + bit as usize, bit as usize % small_blocks);
                if bound >= threshold {
                    return None;
                }
            }
        }
    }
    Some(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_lanes_op(
        op: MaskOp,
        lane: LaneWidth,
        a: &[u8],
        b: &[u8],
        small_mask: usize,
    ) -> Vec<usize> {
        let lb = lane.bytes();
        let mut out = Vec::new();
        for seg in 0..a.len() / lb {
            let mut nonzero = false;
            for k in 0..lb {
                let ai = seg * lb + k;
                let bi = ((seg * lb) & small_mask) + k;
                if op.apply_u64(a[ai] as u64, b[bi] as u64) & 0xff != 0 {
                    nonzero = true;
                }
            }
            if nonzero {
                out.push(seg);
            }
        }
        out
    }

    fn reference_lanes(lane: LaneWidth, a: &[u8], b: &[u8], small_mask: usize) -> Vec<usize> {
        reference_lanes_op(MaskOp::And, lane, a, b, small_mask)
    }

    const ALL_OPS: [MaskOp; 4] = [MaskOp::And, MaskOp::Or, MaskOp::AndNotB, MaskOp::Xor];

    fn pseudo_random_bytes(len: usize, seed: u64, density_shift: u32) -> Vec<u8> {
        // SplitMix64-driven bytes, sparsified so most lanes are zero.
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                if z & ((1 << density_shift) - 1) == 0 {
                    (z >> 56) as u8
                } else {
                    0
                }
            })
            .collect()
    }

    #[test]
    fn nonzero_byte_flags_matches_bytes() {
        for w in [
            0u64,
            1,
            0x100,
            0xff00ff00ff00ff00,
            u64::MAX,
            0x0102030405060708,
        ] {
            let flags = nonzero_byte_flags(w);
            for i in 0..8 {
                let byte = (w >> (8 * i)) & 0xff;
                let flag = (flags >> (8 * i + 7)) & 1;
                assert_eq!(flag == 1, byte != 0, "w={w:#x} byte {i}");
            }
        }
    }

    #[test]
    fn nonzero_u16_flags_matches_lanes() {
        for w in [0u64, 1, 0x1_0000, 0x8000_0000_0000_0000, u64::MAX] {
            let flags = nonzero_u16_flags(w);
            for i in 0..4 {
                let lane = (w >> (16 * i)) & 0xffff;
                let flag = (flags >> (16 * i + 15)) & 1;
                assert_eq!(flag == 1, lane != 0, "w={w:#x} lane {i}");
            }
        }
    }

    #[test]
    fn all_levels_match_reference_same_size() {
        for &len in &[64usize, 128, 512, 4096] {
            let a = pseudo_random_bytes(len, 1, 2);
            let b = pseudo_random_bytes(len, 7, 2);
            for lane in [LaneWidth::U8, LaneWidth::U16] {
                let expect = reference_lanes(lane, &a, &b, usize::MAX);
                for level in SimdLevel::available_levels() {
                    let mut got = Vec::new();
                    for_each_nonzero_lane(level, lane, &a, &b, |i| got.push(i));
                    got.sort_unstable();
                    assert_eq!(got, expect, "level={level} lane={lane:?} len={len}");
                }
            }
        }
    }

    #[test]
    fn all_levels_match_reference_folded() {
        let large = pseudo_random_bytes(1024, 3, 1);
        for &small_len in &[64usize, 128, 256] {
            let small = pseudo_random_bytes(small_len, 9, 1);
            for lane in [LaneWidth::U8, LaneWidth::U16] {
                let expect = reference_lanes(lane, &large, &small, small_len - 1);
                for level in SimdLevel::available_levels() {
                    let mut got = Vec::new();
                    for_each_nonzero_lane_folded(level, lane, &large, &small, |i| got.push(i));
                    got.sort_unstable();
                    assert_eq!(got, expect, "level={level} lane={lane:?} small={small_len}");
                }
            }
        }
    }

    #[test]
    fn all_ops_match_reference_same_size() {
        for &len in &[64usize, 128, 512, 4096] {
            let a = pseudo_random_bytes(len, 5, 2);
            let b = pseudo_random_bytes(len, 13, 2);
            for op in ALL_OPS {
                for lane in [LaneWidth::U8, LaneWidth::U16] {
                    let expect = reference_lanes_op(op, lane, &a, &b, usize::MAX);
                    for level in SimdLevel::available_levels() {
                        let mut got = Vec::new();
                        for_each_nonzero_lane_op(level, op, lane, &a, &b, |i| got.push(i));
                        got.sort_unstable();
                        assert_eq!(
                            got, expect,
                            "op={op:?} level={level} lane={lane:?} len={len}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_ops_match_reference_folded() {
        let large = pseudo_random_bytes(1024, 17, 1);
        for &small_len in &[64usize, 128, 256] {
            let small = pseudo_random_bytes(small_len, 23, 1);
            for op in ALL_OPS {
                for lane in [LaneWidth::U8, LaneWidth::U16] {
                    let expect = reference_lanes_op(op, lane, &large, &small, small_len - 1);
                    for level in SimdLevel::available_levels() {
                        let mut got = Vec::new();
                        for_each_nonzero_lane_folded_op(level, op, lane, &large, &small, |i| {
                            got.push(i)
                        });
                        got.sort_unstable();
                        assert_eq!(
                            got, expect,
                            "op={op:?} level={level} lane={lane:?} small={small_len}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn or_scan_covers_both_sides_and_andnot_is_asymmetric() {
        let mut a = vec![0u8; 128];
        let mut b = vec![0u8; 128];
        a[3] = 1; // lane 3 only in a
        b[70] = 1; // lane 70 only in b
        a[100] = 2;
        b[100] = 2; // lane 100 in both
        let lanes = |op| {
            let mut got = Vec::new();
            for_each_nonzero_lane_op(SimdLevel::Scalar, op, LaneWidth::U8, &a, &b, |i| {
                got.push(i)
            });
            got
        };
        assert_eq!(lanes(MaskOp::And), vec![100]);
        assert_eq!(lanes(MaskOp::Or), vec![3, 70, 100]);
        assert_eq!(lanes(MaskOp::AndNotB), vec![3]);
        assert_eq!(lanes(MaskOp::Xor), vec![3, 70]);
    }

    #[test]
    fn dense_bitmaps_report_every_lane() {
        let a = vec![0xffu8; 256];
        let b = vec![0xffu8; 256];
        for level in SimdLevel::available_levels() {
            let mut count = 0;
            for_each_nonzero_lane(level, LaneWidth::U8, &a, &b, |_| count += 1);
            assert_eq!(count, 256);
            let mut count16 = 0;
            for_each_nonzero_lane(level, LaneWidth::U16, &a, &b, |_| count16 += 1);
            assert_eq!(count16, 128);
        }
    }

    #[test]
    fn disjoint_bitmaps_report_nothing() {
        let a = vec![0b0101_0101u8; 128];
        let b = vec![0b1010_1010u8; 128];
        for level in SimdLevel::available_levels() {
            for_each_nonzero_lane(level, LaneWidth::U8, &a, &b, |i| {
                panic!("unexpected lane {i} at level {level}")
            });
        }
    }

    #[test]
    fn summary_builder_matches_blocks() {
        for &len in &[0usize, 2, 64, 65, 640, 4096, 4160] {
            let bm = pseudo_random_bytes(len, 11, 3);
            let sum = build_block_summary(&bm);
            assert_eq!(sum.len(), summary_len(len));
            for (blk, chunk) in bm.chunks(SUMMARY_BLOCK_BYTES).enumerate() {
                let bit = (sum[blk / 64] >> (blk % 64)) & 1;
                assert_eq!(
                    bit == 1,
                    chunk.iter().any(|&x| x != 0),
                    "len={len} blk={blk}"
                );
            }
            // Invalid high bits of the last word stay zero.
            let blocks = len.div_ceil(SUMMARY_BLOCK_BYTES);
            if blocks % 64 != 0 && !sum.is_empty() {
                assert_eq!(sum[blocks / 64] >> (blocks % 64), 0);
            }
        }
    }

    #[test]
    fn replicate_low_bits_tiles_the_pattern() {
        for bits in [1usize, 2, 4, 8, 16, 32] {
            let rep = replicate_low_bits((0b1011 & ((1 << bits) - 1)) | 1, bits);
            for i in 0..64 {
                assert_eq!((rep >> i) & 1, (rep >> (i % bits)) & 1, "bits={bits} i={i}");
            }
        }
    }

    #[test]
    fn pruned_same_size_matches_unpruned() {
        for &len in &[64usize, 128, 512, 4096, 8192] {
            for density_shift in [1u32, 2, 4] {
                let a = pseudo_random_bytes(len, 1 + density_shift as u64, density_shift);
                let b = pseudo_random_bytes(len, 7 + density_shift as u64, density_shift);
                let sa = build_block_summary(&a);
                let sb = build_block_summary(&b);
                for lane in [LaneWidth::U8, LaneWidth::U16] {
                    let mut expect = Vec::new();
                    for_each_nonzero_lane(SimdLevel::Scalar, lane, &a, &b, |i| expect.push(i));
                    expect.sort_unstable();
                    for level in SimdLevel::available_levels() {
                        let mut got = Vec::new();
                        let stats =
                            for_each_nonzero_lane_pruned(level, lane, &a, &b, &sa, &sb, |i| {
                                got.push(i)
                            });
                        got.sort_unstable();
                        assert_eq!(got, expect, "level={level} lane={lane:?} len={len}");
                        assert_eq!(stats.blocks, len / SUMMARY_BLOCK_BYTES);
                        assert!(stats.visited <= stats.blocks);
                        assert_eq!(stats.skipped(), stats.blocks - stats.visited);
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_folded_matches_unpruned() {
        // Small sides both below (sub-word replication) and above (word
        // tiling) the 64-block threshold.
        let large = pseudo_random_bytes(16_384, 3, 2);
        let sl = build_block_summary(&large);
        for &small_len in &[64usize, 128, 2048, 4096, 8192] {
            let small = pseudo_random_bytes(small_len, 9, 1);
            let ss = build_block_summary(&small);
            for lane in [LaneWidth::U8, LaneWidth::U16] {
                let mut expect = Vec::new();
                for_each_nonzero_lane_folded(SimdLevel::Scalar, lane, &large, &small, |i| {
                    expect.push(i)
                });
                expect.sort_unstable();
                for level in SimdLevel::available_levels() {
                    let mut got = Vec::new();
                    let stats = for_each_nonzero_lane_folded_pruned(
                        level,
                        lane,
                        &large,
                        &small,
                        &sl,
                        &ss,
                        |i| got.push(i),
                    );
                    got.sort_unstable();
                    assert_eq!(got, expect, "level={level} lane={lane:?} small={small_len}");
                    assert_eq!(stats.blocks, large.len() / SUMMARY_BLOCK_BYTES);
                }
            }
        }
    }

    #[test]
    fn pruned_scan_skips_disjoint_blocks() {
        // a populates even blocks, b odd blocks: the summary AND is empty,
        // so the pruned scan must visit nothing at all.
        let mut a = vec![0u8; 1024];
        let mut b = vec![0u8; 1024];
        for blk in 0..16 {
            let target = if blk % 2 == 0 { &mut a } else { &mut b };
            target[blk * 64 + 7] = 0xAA;
        }
        let sa = build_block_summary(&a);
        let sb = build_block_summary(&b);
        for level in SimdLevel::available_levels() {
            let stats = for_each_nonzero_lane_pruned(level, LaneWidth::U8, &a, &b, &sa, &sb, |i| {
                panic!("unexpected lane {i} at level {level}")
            });
            assert_eq!(stats.visited, 0);
            assert_eq!(stats.skipped(), 16);
        }
    }

    #[test]
    fn pruned_dense_bitmaps_visit_everything() {
        let a = vec![0xffu8; 256];
        let b = vec![0xffu8; 256];
        let sa = build_block_summary(&a);
        let sb = build_block_summary(&b);
        for level in SimdLevel::available_levels() {
            let mut count = 0;
            let stats =
                for_each_nonzero_lane_pruned(level, LaneWidth::U8, &a, &b, &sa, &sb, |_| {
                    count += 1
                });
            assert_eq!(count, 256);
            assert_eq!(stats.visited, 4);
            assert_eq!(stats.skipped(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "summary/bitmap mismatch")]
    fn pruned_rejects_wrong_summary_length() {
        let a = vec![0u8; 128];
        let b = vec![0u8; 128];
        let _ = for_each_nonzero_lane_pruned(
            SimdLevel::Scalar,
            LaneWidth::U8,
            &a,
            &b,
            &[0u64; 2],
            &[0u64],
            |_| {},
        );
    }

    /// Naive mirror of [`summary_min_bound`]: full Σ min over AND blocks.
    fn reference_min_bound(large: &[u8], small: &[u8], pop_l: &[u64], pop_s: &[u64]) -> u64 {
        let sl = build_block_summary(large);
        let ss = build_block_summary(small);
        let small_blocks = small.len() / SUMMARY_BLOCK_BYTES;
        let mut total = 0u64;
        for blk in 0..large.len() / SUMMARY_BLOCK_BYTES {
            let sb = blk % small_blocks;
            let bl = (sl[blk / 64] >> (blk % 64)) & 1;
            let bs = (ss[sb / 64] >> (sb % 64)) & 1;
            if bl & bs == 1 {
                total += pop_l[blk].min(pop_s[sb]);
            }
        }
        total
    }

    #[test]
    fn summary_min_bound_matches_naive_sum() {
        for &(large_len, small_len) in &[(1024usize, 1024usize), (4096, 1024), (8192, 128)] {
            let large = pseudo_random_bytes(large_len, 41, 2);
            let small = pseudo_random_bytes(small_len, 43, 2);
            let blocks_l = large_len / SUMMARY_BLOCK_BYTES;
            let blocks_s = small_len / SUMMARY_BLOCK_BYTES;
            let pop_l: Vec<u64> = (0..blocks_l as u64).map(|b| b % 7 + 1).collect();
            let pop_s: Vec<u64> = (0..blocks_s as u64).map(|b| b % 5 + 1).collect();
            let expect = reference_min_bound(&large, &small, &pop_l, &pop_s);
            let sl = build_block_summary(&large);
            let ss = build_block_summary(&small);
            // Below the true total the filter rejects with the exact sum…
            let got = summary_min_bound(&sl, &ss, blocks_s, expect + 1, |bl, bs| {
                pop_l[bl].min(pop_s[bs])
            });
            assert_eq!(got, Some(expect), "large={large_len} small={small_len}");
            // …and at (or under) it, accepts without finishing the walk.
            if expect > 0 {
                let got = summary_min_bound(&sl, &ss, blocks_s, expect, |bl, bs| {
                    pop_l[bl].min(pop_s[bs])
                });
                assert_eq!(got, None, "large={large_len} small={small_len}");
            }
        }
    }

    #[test]
    fn summary_min_bound_zero_threshold_never_rejects() {
        let bm = pseudo_random_bytes(256, 3, 2);
        let sum = build_block_summary(&bm);
        assert_eq!(summary_min_bound(&sum, &sum, 4, 0, |_, _| 1), None);
    }

    #[test]
    fn summary_min_bound_disjoint_summaries_reject_everything() {
        // a populates even blocks, b odd blocks: the AND is empty, so any
        // positive threshold rejects with a zero bound and zero callbacks.
        let mut a = vec![0u8; 1024];
        let mut b = vec![0u8; 1024];
        for blk in 0..16 {
            let target = if blk % 2 == 0 { &mut a } else { &mut b };
            target[blk * 64 + 7] = 0xAA;
        }
        let sa = build_block_summary(&a);
        let sb = build_block_summary(&b);
        let got = summary_min_bound(&sa, &sb, 16, 1, |bl, bs| {
            panic!("unexpected block pair ({bl}, {bs})")
        });
        assert_eq!(got, Some(0));
    }

    fn pseudo_random_words(len: usize, seed: u64, density_shift: u32) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                if density_shift == 0 || z & ((1 << density_shift) - 1) == 0 {
                    z
                } else {
                    0
                }
            })
            .collect()
    }

    #[test]
    fn word_kernels_match_reference_all_ops_and_levels() {
        for &len in &[8usize, 64, 1024] {
            for density_shift in [0u32, 1, 3] {
                let a = pseudo_random_words(len, 31 + u64::from(density_shift), density_shift);
                let b = pseudo_random_words(len, 77 + u64::from(density_shift), density_shift);
                for op in ALL_OPS {
                    let expect_words: Vec<u64> = a
                        .iter()
                        .zip(&b)
                        .map(|(&wa, &wb)| op.apply_u64(wa, wb))
                        .collect();
                    let expect_ones: u64 =
                        expect_words.iter().map(|w| u64::from(w.count_ones())).sum();
                    for level in SimdLevel::available_levels() {
                        let got = word_op_count(level, op, &a, &b);
                        assert_eq!(got, expect_ones, "op={op:?} level={level} len={len}");
                        let mut out = vec![0u64; len];
                        let got = word_op_into(level, op, &a, &b, &mut out);
                        assert_eq!(got, expect_ones, "op={op:?} level={level} len={len}");
                        assert_eq!(out, expect_words, "op={op:?} level={level} len={len}");
                    }
                }
            }
        }
    }

    #[test]
    fn word_kernels_handle_saturated_and_empty_inputs() {
        let full = vec![u64::MAX; 16];
        let none = vec![0u64; 16];
        for level in SimdLevel::available_levels() {
            assert_eq!(word_op_count(level, MaskOp::And, &full, &full), 1024);
            assert_eq!(word_op_count(level, MaskOp::And, &full, &none), 0);
            assert_eq!(word_op_count(level, MaskOp::Xor, &full, &none), 1024);
            assert_eq!(word_op_count(level, MaskOp::AndNotB, &full, &none), 1024);
            assert_eq!(word_op_count(level, MaskOp::AndNotB, &none, &full), 0);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 8 words")]
    fn word_kernels_reject_unaligned_length() {
        let a = vec![0u64; 4];
        let _ = word_op_count(SimdLevel::Scalar, MaskOp::And, &a, &a);
    }

    #[test]
    #[should_panic(expected = "output must match")]
    fn word_into_rejects_short_output() {
        let a = vec![0u64; 8];
        let mut out = vec![0u64; 4];
        let _ = word_op_into(SimdLevel::Scalar, MaskOp::And, &a, &a, &mut out);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let a = vec![0u8; 64];
        let b = vec![0u8; 128];
        for_each_nonzero_lane(SimdLevel::Scalar, LaneWidth::U8, &a, &b, |_| {});
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn unaligned_length_panics() {
        let a = vec![0u8; 32];
        let b = vec![0u8; 32];
        for_each_nonzero_lane(SimdLevel::Scalar, LaneWidth::U8, &a, &b, |_| {});
    }
}
