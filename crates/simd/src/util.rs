//! Small arithmetic helpers shared across the workspace.

/// Round `n` up to the next power of two (minimum 1).
///
/// FESIA rounds every bitmap size to a power of two so that a larger bitmap
/// is always divisible by a smaller one (paper §III-C, "Different bitmap
/// sizes").
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Integer base-2 logarithm of a power of two.
///
/// # Panics
/// Panics (debug) if `n` is not a power of two.
#[inline]
pub fn log2_pow2(n: usize) -> u32 {
    debug_assert!(n.is_power_of_two(), "log2_pow2 requires a power of two");
    n.trailing_zeros()
}

/// Iterator over the indices of set bits in a `u64`, lowest first.
///
/// This is the `tzcnt`-and-clear loop of the paper's step 3 ("non-zero
/// segment index extraction", §IV): each `next` returns the index of the
/// least-significant 1-bit and clears it.
#[derive(Debug, Clone)]
pub struct SetBits(pub u64);

impl Iterator for SetBits {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let idx = self.0.trailing_zeros();
        self.0 &= self.0 - 1; // clear the lowest set bit
        Some(idx)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SetBits {}

/// Ceiling division (const-friendly wrapper over `usize::div_ceil`).
#[inline]
pub const fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_basics() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(12), 16);
        assert_eq!(next_pow2(1 << 20), 1 << 20);
        assert_eq!(next_pow2((1 << 20) + 1), 1 << 21);
    }

    #[test]
    fn log2_of_powers() {
        for k in 0..63 {
            assert_eq!(log2_pow2(1usize << k), k as u32);
        }
    }

    #[test]
    fn set_bits_enumerates_all() {
        let bits: Vec<u32> = SetBits(0b1011_0001).collect();
        assert_eq!(bits, vec![0, 4, 5, 7]);
        assert_eq!(SetBits(0).count(), 0);
        assert_eq!(SetBits(u64::MAX).count(), 64);
        let all: Vec<u32> = SetBits(u64::MAX).collect();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn set_bits_len_matches_popcount() {
        let v = 0xdead_beef_cafe_f00du64;
        assert_eq!(SetBits(v).len(), v.count_ones() as usize);
    }

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
        assert_eq!(div_ceil(7, 4), 2);
        assert_eq!(div_ceil(8, 4), 2);
    }
}
