//! Cycle-accurate timing for the benchmark harness.
//!
//! The paper reports runtimes in CPU cycles (Fig. 7 uses "million cycles").
//! On x86-64 we read the time-stamp counter (`rdtsc`); on other targets we
//! fall back to [`std::time::Instant`] scaled by a calibrated cycles-per-
//! nanosecond estimate so downstream code always works in cycle units.

use std::time::Instant;

/// Read the time-stamp counter.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn rdtsc() -> u64 {
    // SAFETY: `_rdtsc` is available on all x86-64 CPUs.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Portable stand-in for `rdtsc` on non-x86-64 targets: nanoseconds since an
/// arbitrary process-local epoch (close enough to cycles for shape
/// comparisons on ~GHz machines).
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn rdtsc() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// A started cycle timer; [`CycleTimer::elapsed_cycles`] reads it.
///
/// Also records wall-clock time so harness output can show both units.
#[derive(Debug, Clone, Copy)]
pub struct CycleTimer {
    start_tsc: u64,
    start_wall: Instant,
}

impl CycleTimer {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        CycleTimer {
            start_wall: Instant::now(),
            start_tsc: rdtsc(),
        }
    }

    /// Cycles elapsed since [`CycleTimer::start`].
    #[inline]
    pub fn elapsed_cycles(&self) -> u64 {
        rdtsc().saturating_sub(self.start_tsc)
    }

    /// Nanoseconds elapsed since [`CycleTimer::start`].
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        self.start_wall.elapsed().as_nanos() as u64
    }
}

/// Estimate the TSC frequency in GHz by timing a short sleep.
///
/// Used only for pretty-printing; measurement comparisons are done in cycles.
pub fn estimate_tsc_ghz() -> f64 {
    let t = CycleTimer::start();
    std::thread::sleep(std::time::Duration::from_millis(20));
    let cycles = t.elapsed_cycles() as f64;
    let nanos = t.elapsed_nanos() as f64;
    cycles / nanos.max(1.0)
}

/// Run `f` repeatedly and return the minimum observed cycle count.
///
/// The minimum over `reps` runs is the standard low-noise estimator for
/// short deterministic kernels (it discards interrupts and frequency ramp).
pub fn min_cycles<F: FnMut() -> u64>(reps: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps.max(1) {
        best = best.min(f());
    }
    best
}

/// Time one invocation of `f` in cycles, returning `(cycles, value)`.
///
/// `f`'s return value is passed through (and thus kept live) so the compiler
/// cannot discard the computation.
#[inline]
pub fn time_cycles<T, F: FnOnce() -> T>(f: F) -> (u64, T) {
    let t = CycleTimer::start();
    let v = f();
    (t.elapsed_cycles(), v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_is_monotonic_enough() {
        let a = rdtsc();
        let b = rdtsc();
        // TSC is monotonic on any post-2008 CPU; allow equality.
        assert!(b >= a);
    }

    #[test]
    fn timer_measures_something() {
        let t = CycleTimer::start();
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        assert!(t.elapsed_cycles() > 0);
    }

    #[test]
    fn time_cycles_passes_value_through() {
        let (cycles, v) = time_cycles(|| 21 * 2);
        assert_eq!(v, 42);
        // Even an empty closure costs a couple of cycles to time.
        assert!(cycles < u64::MAX);
    }

    #[test]
    fn min_cycles_returns_min() {
        let mut i = 0u64;
        let got = min_cycles(5, || {
            i += 1;
            i * 100
        });
        assert_eq!(got, 100);
    }

    #[test]
    fn ghz_estimate_is_plausible() {
        let ghz = estimate_tsc_ghz();
        assert!(ghz > 0.05 && ghz < 10.0, "implausible TSC GHz: {ghz}");
    }
}
