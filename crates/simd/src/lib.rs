//! SIMD support layer for the FESIA set-intersection library.
//!
//! This crate isolates everything that depends on the host CPU:
//!
//! * [`SimdLevel`] — runtime detection of the widest usable vector ISA
//!   (SSE4.2 / AVX2 / AVX-512), with a portable scalar fallback so the rest
//!   of the workspace builds and runs on any architecture.
//! * [`mask`] — the lane-mask primitives used by FESIA's bitmap-level
//!   intersection: AND two byte (or 16-bit-lane) streams and report which
//!   lanes are non-zero as a dense bitmask.
//! * [`bitpack`] — fixed-width bit packing of `u32` values, the storage
//!   substrate of the compressed segment tier.
//! * [`prefetch`] — software prefetch hints (`prefetcht0`/`prefetcht1` on
//!   x86-64, no-ops elsewhere) used by the pipelined two-phase dispatch.
//! * [`timer`] — cycle-accurate timing (`rdtsc` on x86-64, monotonic clock
//!   elsewhere) used by the benchmark harness to report the paper's
//!   "million cycles" figures.
//! * [`util`] — small arithmetic helpers (`next_pow2`, set-bit iteration).
//!
//! All `unsafe` in this crate is confined to `#[target_feature]` functions
//! whose callers must have verified the corresponding [`SimdLevel`]; the safe
//! wrappers in this crate perform that check.

pub mod bitpack;
pub mod features;
pub mod mask;
pub mod prefetch;
pub mod timer;
pub mod util;

pub use features::SimdLevel;
pub use timer::CycleTimer;
