//! Fixed-width bit packing of `u32` values into little-endian `u64` words.
//!
//! The compressed segment tier stores each reordered element as a
//! `width`-bit *residual* (see `fesia-core`'s `layout` module for the
//! residual transform); this module owns the width-generic bit plumbing:
//! packing a slice of values at a fixed width, random access to one packed
//! value, and a scalar bulk unpack. The SIMD unpack prologues in the
//! kernel backends read the same layout directly.
//!
//! # Layout
//!
//! Value `i` occupies bits `[i * width, (i + 1) * width)` of the packed
//! stream, LSB-first within each `u64` word, words in index order. A value
//! may straddle two adjacent words. [`required_words`] always reserves one
//! trailing pad word beyond the last occupied bit so that vectorized
//! readers may over-read a full 64-bit word (or an unaligned 32-bit gather
//! window) past any in-bounds bit offset without leaving the allocation.

use crate::util::div_ceil;

/// Largest residual width the compressed tier will store. Wider residuals
/// save less than one byte per element over raw `u32` storage, so packing
/// is declined beyond this point (and the SIMD unpack's 32-bit gather
/// window requires `shift + width <= 32` for bit shifts up to 7).
pub const MAX_WIDTH: u32 = 24;

/// Number of `u64` words needed to pack `n` values at `width` bits,
/// including one trailing pad word for vectorized over-read.
///
/// # Panics
/// Panics if `width` is 0 or exceeds [`MAX_WIDTH`].
pub const fn required_words(n: usize, width: u32) -> usize {
    assert!(width >= 1 && width <= MAX_WIDTH);
    div_ceil(n * width as usize, 64) + 1
}

/// Pack `values` at `width` bits each (values must fit in `width` bits).
///
/// # Panics
/// Panics if `width` is out of range or any value needs more bits.
pub fn pack(values: &[u32], width: u32) -> Vec<u64> {
    assert!((1..=MAX_WIDTH).contains(&width), "width out of range");
    let mask = (1u64 << width) - 1;
    let mut words = vec![0u64; required_words(values.len(), width)];
    for (i, &v) in values.iter().enumerate() {
        assert!(
            u64::from(v) <= mask,
            "value {v} does not fit in {width} bits"
        );
        let bit = i * width as usize;
        let (w, s) = (bit >> 6, (bit & 63) as u32);
        words[w] |= u64::from(v) << s;
        if s + width > 64 {
            // The straddle shift is 64 - s; s > 64 - width >= 40 here, so
            // the shift count stays strictly inside 1..=23 — never 64.
            words[w + 1] |= u64::from(v) >> (64 - s);
        }
    }
    words
}

/// Read packed value `i`.
///
/// # Panics
/// Panics (via slice indexing) if the packed stream is shorter than
/// [`required_words`]`(i + 1, width)` or `width` is out of range.
#[inline]
pub fn get(words: &[u64], width: u32, i: usize) -> u32 {
    debug_assert!((1..=MAX_WIDTH).contains(&width));
    let mask = (1u64 << width) - 1;
    let bit = i * width as usize;
    let (w, s) = (bit >> 6, (bit & 63) as u32);
    let mut v = words[w] >> s;
    if s + width > 64 {
        v |= words[w + 1] << (64 - s);
    }
    (v & mask) as u32
}

/// Scalar bulk unpack of the first `n` packed values into `out[..n]`.
///
/// # Panics
/// Panics if `out` is shorter than `n` or the packed stream is too short.
pub fn unpack_into(words: &[u64], width: u32, n: usize, out: &mut [u32]) {
    assert!(out.len() >= n, "output buffer too short");
    for (i, slot) in out.iter_mut().enumerate().take(n) {
        *slot = get(words, width, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn round_trips_every_width() {
        let mut state = 0x1234_5678_9abc_def1u64;
        for width in 1..=MAX_WIDTH {
            let mask = (1u64 << width) - 1;
            let values: Vec<u32> = (0..257)
                .map(|_| (xorshift(&mut state) & mask) as u32)
                .collect();
            let words = pack(&values, width);
            assert_eq!(words.len(), required_words(values.len(), width));
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(get(&words, width, i), v, "width={width} i={i}");
            }
            let mut out = vec![0u32; values.len()];
            unpack_into(&words, width, values.len(), &mut out);
            assert_eq!(out, values, "width={width}");
        }
    }

    #[test]
    fn straddling_values_survive() {
        // width 9: value 7 occupies bits 63..72 — straddles words 0 and 1.
        let values: Vec<u32> = (0..16).map(|i| 0x1FF - i).collect();
        let words = pack(&values, 9);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(get(&words, 9, i), v);
        }
    }

    #[test]
    fn empty_input_still_reserves_the_pad_word() {
        assert_eq!(required_words(0, 8), 1);
        assert_eq!(pack(&[], 8).len(), 1);
    }

    #[test]
    fn pad_word_is_always_present() {
        // 8 values x 8 bits = exactly one word of payload, plus the pad.
        assert_eq!(required_words(8, 8), 2);
        // 7 values x 9 bits = 63 bits, still one payload word + pad.
        assert_eq!(required_words(7, 9), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let _ = pack(&[256], 8);
    }
}
