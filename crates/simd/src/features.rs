//! Runtime CPU feature detection and the [`SimdLevel`] ladder.
//!
//! FESIA's data structures are parameterized by the SIMD width `w` of the
//! host (the paper evaluates SSE = 128-bit, AVX = 256-bit and AVX-512 =
//! 512-bit). [`SimdLevel::detect`] picks the widest level the CPU supports;
//! every level can also be requested explicitly so the benchmark harness can
//! reproduce the paper's per-ISA series on a single machine.

use std::fmt;
use std::str::FromStr;

/// A vector ISA level, ordered from narrowest to widest.
///
/// `Scalar` is a strict software fallback with identical semantics to the
/// SIMD paths; it is what non-x86 targets always get.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Portable scalar code (64-bit word tricks only).
    Scalar,
    /// 128-bit SSE (requires SSE4.2 for efficient popcount-style idioms).
    Sse,
    /// 256-bit AVX2.
    Avx2,
    /// 512-bit AVX-512 (requires F + BW + VL for byte-lane mask ops).
    Avx512,
}

impl SimdLevel {
    /// All levels, narrowest first.
    pub const ALL: [SimdLevel; 4] = [
        SimdLevel::Scalar,
        SimdLevel::Sse,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ];

    /// Detect the widest level usable on this CPU.
    ///
    /// The result is cached in an atomic after the first call, so this is
    /// cheap enough for per-intersection dispatch checks.
    #[cfg(target_arch = "x86_64")]
    pub fn detect() -> SimdLevel {
        use std::sync::atomic::{AtomicU8, Ordering};
        static CACHED: AtomicU8 = AtomicU8::new(u8::MAX);
        match CACHED.load(Ordering::Relaxed) {
            0 => SimdLevel::Scalar,
            1 => SimdLevel::Sse,
            2 => SimdLevel::Avx2,
            3 => SimdLevel::Avx512,
            _ => {
                let level = if is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx512bw")
                    && is_x86_feature_detected!("avx512vl")
                {
                    SimdLevel::Avx512
                } else if is_x86_feature_detected!("avx2") {
                    SimdLevel::Avx2
                } else if is_x86_feature_detected!("sse4.2") {
                    SimdLevel::Sse
                } else {
                    SimdLevel::Scalar
                };
                CACHED.store(level as u8, Ordering::Relaxed);
                level
            }
        }
    }

    /// Detect the widest level usable on this CPU (non-x86: always scalar).
    #[cfg(not(target_arch = "x86_64"))]
    pub fn detect() -> SimdLevel {
        SimdLevel::Scalar
    }

    /// Whether this level can actually run on the current CPU.
    pub fn is_available(self) -> bool {
        self <= SimdLevel::detect()
    }

    /// The SIMD width `w` in bits used in the paper's complexity
    /// `O(n/sqrt(w) + r)`. The scalar path operates on 64-bit words.
    pub const fn width_bits(self) -> usize {
        match self {
            SimdLevel::Scalar => 64,
            SimdLevel::Sse => 128,
            SimdLevel::Avx2 => 256,
            SimdLevel::Avx512 => 512,
        }
    }

    /// The number of 32-bit element lanes in one vector (`V` in the paper).
    pub const fn lanes_u32(self) -> usize {
        self.width_bits() / 32
    }

    /// The number of byte lanes in one vector.
    pub const fn lanes_u8(self) -> usize {
        self.width_bits() / 8
    }

    /// All levels available on this machine, narrowest first.
    pub fn available_levels() -> Vec<SimdLevel> {
        let max = SimdLevel::detect();
        SimdLevel::ALL
            .iter()
            .copied()
            .filter(|&l| l <= max)
            .collect()
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse => "sse",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing an unknown [`SimdLevel`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSimdLevelError(pub String);

impl fmt::Display for ParseSimdLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown SIMD level `{}` (expected scalar|sse|avx2|avx512)",
            self.0
        )
    }
}

impl std::error::Error for ParseSimdLevelError {}

impl FromStr for SimdLevel {
    type Err = ParseSimdLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(SimdLevel::Scalar),
            "sse" | "sse4.2" | "sse42" => Ok(SimdLevel::Sse),
            "avx" | "avx2" => Ok(SimdLevel::Avx2),
            "avx512" | "avx-512" => Ok(SimdLevel::Avx512),
            other => Err(ParseSimdLevelError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse);
        assert!(SimdLevel::Sse < SimdLevel::Avx2);
        assert!(SimdLevel::Avx2 < SimdLevel::Avx512);
    }

    #[test]
    fn widths_match_paper() {
        assert_eq!(SimdLevel::Sse.width_bits(), 128);
        assert_eq!(SimdLevel::Avx2.width_bits(), 256);
        assert_eq!(SimdLevel::Avx512.width_bits(), 512);
        assert_eq!(SimdLevel::Sse.lanes_u32(), 4);
        assert_eq!(SimdLevel::Avx2.lanes_u32(), 8);
        assert_eq!(SimdLevel::Avx512.lanes_u32(), 16);
    }

    #[test]
    fn detect_is_self_consistent() {
        let l = SimdLevel::detect();
        assert!(l.is_available());
        for level in SimdLevel::available_levels() {
            assert!(level.is_available());
            assert!(level <= l);
        }
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(SimdLevel::Scalar.is_available());
        assert!(SimdLevel::available_levels().contains(&SimdLevel::Scalar));
    }

    #[test]
    fn parse_round_trips() {
        for level in SimdLevel::ALL {
            let parsed: SimdLevel = level.to_string().parse().unwrap();
            assert_eq!(parsed, level);
        }
        assert!("mmx".parse::<SimdLevel>().is_err());
        assert_eq!("AVX".parse::<SimdLevel>().unwrap(), SimdLevel::Avx2);
    }
}
