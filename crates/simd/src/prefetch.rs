//! Software prefetch hints, with a scalar no-op fallback.
//!
//! The pipelined intersection dispatch (fesia-core) discovers surviving
//! segments in phase 1 and touches their element data in phase 2; the
//! gap between discovery and use is exactly where a prefetch hides the
//! dependent-load latency that dominates sparse intersections (Ding &
//! König, *Fast Set Intersection in Memory*). On x86-64 these compile
//! to `prefetcht0`/`prefetcht1`; on other architectures they are no-ops
//! so callers never need to gate on the target.

/// Hint that the cache line holding `p` will be read soon (all cache
/// levels, `_MM_HINT_T0`). Safe for any address — prefetch never faults.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `prefetcht0` is architecturally a hint; it cannot fault
    // even on invalid addresses and touches no architectural state.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Like [`prefetch_read`] but targeting L2 and beyond (`_MM_HINT_T1`) —
/// for data needed after more intervening work.
#[inline(always)]
pub fn prefetch_read_l2<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: as in `prefetch_read`.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T1 }>(p as *const i8)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless_on_any_address() {
        let v = [1u32, 2, 3];
        prefetch_read(v.as_ptr());
        prefetch_read_l2(v.as_ptr());
        // Past-the-end and null: still just hints.
        prefetch_read(unsafe { v.as_ptr().add(v.len()) });
        prefetch_read(std::ptr::null::<u32>());
    }
}
