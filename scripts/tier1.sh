#!/usr/bin/env bash
# Tier-1 verification: what CI (and the roadmap) require to stay green.
#
#   scripts/tier1.sh            # build + full test suite
#   scripts/tier1.sh --smoke    # additionally run the smoke-scale batch
#                               # experiment as an end-to-end probe
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo fmt --check =="
cargo fmt --check

echo "== tier1: cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q =="
cargo test -q

if [[ "${1:-}" == "--smoke" ]]; then
    echo "== tier1: repro batch --scale smoke =="
    ./target/release/repro batch --scale smoke
fi

echo "== tier1: OK =="
