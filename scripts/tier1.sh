#!/usr/bin/env bash
# Tier-1 verification: what CI (and the roadmap) require to stay green.
#
#   scripts/tier1.sh            # build + full test suite
#   scripts/tier1.sh --smoke    # additionally run the smoke-scale batch
#                               # experiment as an end-to-end probe
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo fmt --check =="
cargo fmt --check

echo "== tier1: cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q =="
cargo test -q

if [[ "${1:-}" == "--smoke" ]]; then
    echo "== tier1: repro batch --scale smoke =="
    ./target/release/repro batch --scale smoke
    echo "== tier1: repro prune --scale smoke =="
    ./target/release/repro prune --scale smoke
    echo "== tier1: prune gates (BENCH_prune.json) =="
    grep -q '"counts_match": true' BENCH_prune.json || {
        echo "tier1: FAIL — pruned and unpruned counts disagree"
        exit 1
    }
    overhead=$(sed -n 's/.*"small_dense_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_prune.json | head -1)
    awk -v o="$overhead" 'BEGIN { exit !(o <= 2.0) }' || {
        echo "tier1: FAIL — small-dense prune overhead ${overhead}% > 2%"
        exit 1
    }
    echo "prune gates OK (counts match, small-dense overhead ${overhead}%)"
fi

echo "== tier1: OK =="
