#!/usr/bin/env bash
# Tier-1 verification: what CI (and the roadmap) require to stay green.
#
#   scripts/tier1.sh            # build + full test suite
#   scripts/tier1.sh --smoke    # additionally run the smoke-scale batch
#                               # experiment as an end-to-end probe
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo fmt --check =="
cargo fmt --check

echo "== tier1: cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: cargo clippy --features serve =="
cargo clippy --workspace --all-targets --features serve -- -D warnings

echo "== tier1: cargo build --release (--features serve) =="
cargo build --release --features serve

echo "== tier1: cargo test -q =="
cargo test -q

echo "== tier1: cargo test -q --features serve (feature-gated surfaces) =="
cargo test -q -p fesia-cli -p fesia-bench --features serve

echo "== tier1: cargo doc --no-deps =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q --features serve

if [[ "${1:-}" == "--smoke" ]]; then
    echo "== tier1: repro batch --scale smoke =="
    ./target/release/repro batch --scale smoke
    echo "== tier1: repro prune --scale smoke =="
    ./target/release/repro prune --scale smoke
    echo "== tier1: prune gates (BENCH_prune.json) =="
    grep -q '"counts_match": true' BENCH_prune.json || {
        echo "tier1: FAIL — pruned and unpruned counts disagree"
        exit 1
    }
    overhead=$(sed -n 's/.*"small_dense_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_prune.json | head -1)
    awk -v o="$overhead" 'BEGIN { exit !(o <= 2.0) }' || {
        echo "tier1: FAIL — small-dense prune overhead ${overhead}% > 2%"
        exit 1
    }
    echo "prune gates OK (counts match, small-dense overhead ${overhead}%)"

    echo "== tier1: repro plan --scale smoke =="
    ./target/release/repro plan --scale smoke
    echo "== tier1: plan gates (BENCH_plan.json) =="
    grep -q '"counts_match": true' BENCH_plan.json || {
        echo "tier1: FAIL — a forced plan disagreed with auto on a count"
        exit 1
    }
    grep -q '"auto_within_10pct": true' BENCH_plan.json || {
        echo "tier1: FAIL — auto plan more than 10% behind the best forced plan"
        exit 1
    }
    echo "plan gates OK (counts match, auto within 10% of best forced)"

    echo "== tier1: repro compress --scale smoke =="
    ./target/release/repro compress --scale smoke
    echo "== tier1: compress gates (BENCH_compress.json) =="
    grep -q '"counts_match": true' BENCH_compress.json || {
        echo "tier1: FAIL — compressed and raw step-2 counts disagree"
        exit 1
    }
    overhead=$(sed -n 's/.*"auto_decline_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_compress.json | head -1)
    awk -v o="$overhead" 'BEGIN { exit !(o <= 2.0) }' || {
        echo "tier1: FAIL — small-dense compress-dispatch overhead ${overhead}% > 2%"
        exit 1
    }
    echo "compress gates OK (counts match, auto-decline overhead ${overhead}%)"

    echo "== tier1: repro containers --scale smoke =="
    ./target/release/repro containers --scale smoke
    echo "== tier1: container gates (BENCH_containers.json) =="
    grep -q '"counts_match": true,' BENCH_containers.json || {
        echo "tier1: FAIL — container-path counts disagree with the knob forced off"
        exit 1
    }
    for wl in run_heavy clustered; do
        speedup=$(sed -n "s/.*\"$wl\": {[^}]*\"speedup\": \([0-9.]*\).*/\1/p" BENCH_containers.json | head -1)
        awk -v s="$speedup" 'BEGIN { exit !(s >= 1.25) }' || {
            echo "tier1: FAIL — container speedup ${speedup}x on $wl below 1.25x"
            exit 1
        }
    done
    overhead=$(sed -n 's/.*"auto_decline_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_containers.json | head -1)
    awk -v o="$overhead" 'BEGIN { exit !(o <= 2.0) }' || {
        echo "tier1: FAIL — uniform-sparse container-dispatch overhead ${overhead}% > 2%"
        exit 1
    }
    echo "container gates OK (counts match, speedup >= 1.25x, auto-decline overhead ${overhead}%)"

    echo "== tier1: repro algebra --scale smoke =="
    ./target/release/repro algebra --scale smoke
    echo "== tier1: algebra gates (BENCH_algebra.json) =="
    grep -q '"results_match": true' BENCH_algebra.json || {
        echo "tier1: FAIL — a materialized set operation disagreed with the merge oracle"
        exit 1
    }
    ratio=$(sed -n 's/.*"intersect_overhead_ratio": \([0-9.]*\).*/\1/p' BENCH_algebra.json | head -1)
    awk -v r="$ratio" 'BEGIN { exit !(r <= 2.0) }' || {
        echo "tier1: FAIL — materializing intersect ${ratio}x slower than the count path (> 2.0x)"
        exit 1
    }
    echo "algebra gates OK (results match, materialize/count ratio ${ratio}x)"

    echo "== tier1: repro simjoin --scale smoke =="
    ./target/release/repro simjoin --scale smoke
    echo "== tier1: simjoin gates (BENCH_simjoin.json) =="
    grep -q '"pairs_match": true' BENCH_simjoin.json || {
        echo "tier1: FAIL — cascade survivor pairs differ from the prefix-filter baseline"
        exit 1
    }
    grep -q '"counters_balance": true' BENCH_simjoin.json || {
        echo "tier1: FAIL — simjoin counters do not account for every candidate"
        exit 1
    }
    grep -q '"survivors_expected": true' BENCH_simjoin.json || {
        echo "tier1: FAIL — survivor count differs from the corpus construction"
        exit 1
    }
    speedup=$(sed -n 's/.*"cascade_speedup": \([0-9.]*\).*/\1/p' BENCH_simjoin.json | head -1)
    awk -v s="$speedup" 'BEGIN { exit !(s >= 1.4) }' || {
        echo "tier1: FAIL — cascade speedup ${speedup}x over prefix-only baseline below 1.4x"
        exit 1
    }
    echo "simjoin gates OK (pairs match, counters balance, cascade ${speedup}x)"

    echo "== tier1: repro serve --scale smoke =="
    ./target/release/repro serve --scale smoke
    echo "== tier1: serve gates (BENCH_serve.json) =="
    grep -q '"counts_match": true' BENCH_serve.json || {
        echo "tier1: FAIL — serving results diverged from the offline replay oracle"
        exit 1
    }
    grep -q '"p99_within_budget": true' BENCH_serve.json || {
        p99=$(sed -n 's/.*"p99_ms": \([0-9.]*\).*/\1/p' BENCH_serve.json | head -1)
        echo "tier1: FAIL — serve read p99 ${p99}ms over budget"
        exit 1
    }
    grep -q '"stall_within_budget": true' BENCH_serve.json || {
        stall=$(sed -n 's/.*"max_reader_stall_ms": \([0-9.]*\).*/\1/p' BENCH_serve.json | head -1)
        echo "tier1: FAIL — a reader stalled ${stall}ms (> 10ms) waiting for an epoch slot"
        exit 1
    }
    p99=$(sed -n 's/.*"p99_ms": \([0-9.]*\).*/\1/p' BENCH_serve.json | head -1)
    stall=$(sed -n 's/.*"max_reader_stall_ms": \([0-9.]*\).*/\1/p' BENCH_serve.json | head -1)
    echo "serve gates OK (oracle match, p99 ${p99}ms, max reader stall ${stall}ms)"

    echo "== tier1: fesia tune --quick round-trip =="
    profile=$(mktemp -t fesia-profile-XXXXXX.json)
    ./target/release/fesia tune --quick --profile "$profile" | grep -q "reload verified" || {
        echo "tier1: FAIL — tune did not write a reloadable profile"
        rm -f "$profile"
        exit 1
    }
    printf '1\n2\n3\n' > "${profile%.json}.txt"
    ./target/release/fesia build "${profile%.json}.txt" "${profile%.json}.fsia" > /dev/null
    FESIA_PROFILE="$profile" ./target/release/fesia info "${profile%.json}.fsia" \
        | grep -q "profile=loaded v" || {
        echo "tier1: FAIL — planner did not load the tuned profile"
        rm -f "$profile" "${profile%.json}.txt" "${profile%.json}.fsia"
        exit 1
    }
    rm -f "$profile" "${profile%.json}.txt" "${profile%.json}.fsia"
    echo "tune smoke OK (profile written, reloaded by the planner)"
fi

echo "== tier1: OK =="
