//! Differential SIMD testing: every ISA path in the workspace must produce
//! bit-identical results to its scalar twin on the same inputs, across the
//! regimes that stress different code paths (dense segments, folded
//! bitmaps, ragged tails, sentinel-adjacent values).

use fesia_baselines::{bmiss, shuffling, simd_galloping};
use fesia_core::{FesiaParams, KernelTable, SegmentedSet, SimdLevel, MAX_ELEMENT};
use fesia_datagen::{pair_with_intersection, sorted_distinct, SplitMix64};

fn regimes() -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut rng = SplitMix64::new(0x51D);
    let mut out = Vec::new();
    // Controlled-overlap pairs across sizes.
    for (n, r) in [
        (64usize, 8usize),
        (1_000, 10),
        (10_000, 100),
        (10_000, 5_000),
    ] {
        out.push(pair_with_intersection(n, n, r, &mut rng));
    }
    // Dense universes (heavy per-segment collisions).
    let a = sorted_distinct(5_000, 20_000, &mut rng);
    let b = sorted_distinct(5_000, 20_000, &mut rng);
    out.push((a, b));
    // Values at the very top of the element domain.
    let top: Vec<u32> = (0..2_000).map(|i| MAX_ELEMENT - 2 * i).rev().collect();
    let top2: Vec<u32> = (0..2_000).map(|i| MAX_ELEMENT - 3 * i).rev().collect();
    out.push((top, top2));
    // Ragged lengths that are not multiples of any vector width.
    out.push(pair_with_intersection(1_003, 977, 31, &mut rng));
    out
}

#[test]
fn fesia_levels_are_bit_identical() {
    for (i, (av, bv)) in regimes().into_iter().enumerate() {
        let mut answers = Vec::new();
        for level in SimdLevel::available_levels() {
            let params = FesiaParams::for_level(level);
            let a = SegmentedSet::build(&av, &params).unwrap();
            let b = SegmentedSet::build(&bv, &params).unwrap();
            for stride in [1usize, 2, 4, 8] {
                let t = KernelTable::new(level, stride);
                answers.push((
                    format!("{level}/s{stride}"),
                    fesia_core::intersect_count_with(&a, &b, &t),
                ));
            }
        }
        let first = answers[0].1;
        for (name, got) in &answers {
            assert_eq!(*got, first, "regime {i}: {name} diverged");
        }
    }
}

#[test]
fn baseline_simd_paths_match_their_scalar_twins() {
    for (i, (a, b)) in regimes().into_iter().enumerate() {
        let scalar = fesia_baselines::merge::scalar_count(&a, &b);
        for level in SimdLevel::available_levels() {
            assert_eq!(
                shuffling::count_at(&a, &b, level),
                scalar,
                "regime {i}: shuffling {level}"
            );
            assert_eq!(
                bmiss::count_at(&a, &b, level),
                scalar,
                "regime {i}: bmiss {level}"
            );
            assert_eq!(
                simd_galloping::count_at(&a, &b, level),
                scalar,
                "regime {i}: simd-galloping {level}"
            );
        }
    }
}

#[test]
fn bitmap_scan_levels_agree_via_breakdown() {
    // The number of surviving segments is a property of the bitmaps, not
    // of the scan ISA: every level must report the same value.
    let mut rng = SplitMix64::new(0xB17);
    let (av, bv) = pair_with_intersection(20_000, 20_000, 200, &mut rng);
    let params = FesiaParams::auto();
    let a = SegmentedSet::build(&av, &params).unwrap();
    let b = SegmentedSet::build(&bv, &params).unwrap();
    let mut survivors = Vec::new();
    for level in SimdLevel::available_levels() {
        let t = KernelTable::new(level, 1);
        let bd = fesia_core::intersect_count_breakdown(&a, &b, &t);
        assert_eq!(bd.count, 200, "level={level}");
        survivors.push(bd.matched_segments);
    }
    assert!(
        survivors.windows(2).all(|w| w[0] == w[1]),
        "survivor counts diverged across levels: {survivors:?}"
    );
}
