//! Property-based invariants over pseudo-random inputs.
//!
//! Strategy: generate arbitrary duplicate-free sorted sets from a seeded
//! [`SplitMix64`] stream (self-contained — no external property-testing
//! dependency), and assert that every method computes exactly the
//! reference intersection, that the segmented encoding round-trips, and
//! that the algebraic identities of intersection hold. Each property runs
//! `CASES` deterministic cases; a failing case reports its seed so it can
//! be replayed directly.

use fesia_baselines::Method;
use fesia_core::{FesiaParams, KernelTable, SegmentedSet, SimdLevel};
use fesia_datagen::SplitMix64;

const DOMAIN: u32 = u32::MAX - 16;
const CASES: u64 = 64;

/// Sorted duplicate-free set with a random length in `0..max_len`.
fn sorted_set(rng: &mut SplitMix64, max_len: usize) -> Vec<u32> {
    let n = rng.below(max_len as u64) as usize;
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        set.insert((rng.below(DOMAIN as u64)) as u32);
    }
    set.into_iter().collect()
}

/// A pair with forced overlap: some elements of `a` are spliced into `b`.
fn overlapping_pair(rng: &mut SplitMix64) -> (Vec<u32>, Vec<u32>) {
    let a = sorted_set(rng, 300);
    let mut b = sorted_set(rng, 300);
    let sel = rng.next_u64();
    for (i, &x) in a.iter().enumerate() {
        if (sel >> (i % 64)) & 1 == 1 {
            if let Err(pos) = b.binary_search(&x) {
                b.insert(pos, x);
            }
        }
    }
    (a, b)
}

fn reference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let bs: std::collections::HashSet<u32> = b.iter().copied().collect();
    a.iter().copied().filter(|x| bs.contains(x)).collect()
}

#[test]
fn every_baseline_counts_the_reference() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x1000 + seed);
        let (a, b) = overlapping_pair(&mut rng);
        let want = reference(&a, &b).len();
        for m in Method::all() {
            assert_eq!(m.count(&a, &b), want, "seed={seed} method={}", m.name());
        }
    }
}

#[test]
fn fesia_counts_the_reference() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x2000 + seed);
        let (a, b) = overlapping_pair(&mut rng);
        let want = reference(&a, &b).len();
        let params = FesiaParams::auto();
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        assert_eq!(fesia_core::intersect_count(&sa, &sb), want, "seed={seed}");
        assert_eq!(
            fesia_core::intersect(&sa, &sb),
            reference(&a, &b),
            "seed={seed}"
        );
        assert_eq!(fesia_core::auto_count(&sa, &sb), want, "seed={seed}");
        assert_eq!(fesia_core::hash_probe_count(&a, &sb), want, "seed={seed}");
    }
}

/// Both dispatch forms of the two-phase algorithm agree on every input,
/// at every prefetch distance (the pipelined path is the default, so this
/// is the load-bearing equivalence for the whole suite).
#[test]
fn pipelined_and_interleaved_forms_agree() {
    let table = KernelTable::auto();
    let mut scratch = Vec::new();
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x2500 + seed);
        let (a, b) = overlapping_pair(&mut rng);
        let params = FesiaParams::auto();
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        let want = fesia_core::intersect_count_interleaved_with(&sa, &sb, &table);
        for dist in [0usize, 2, 8, 32] {
            assert_eq!(
                fesia_core::intersect_count_pipelined_with(&sa, &sb, &table, &mut scratch, dist),
                want,
                "seed={seed} dist={dist}"
            );
        }
    }
}

#[test]
fn intersection_is_commutative_and_bounded() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x3000 + seed);
        let (a, b) = overlapping_pair(&mut rng);
        let params = FesiaParams::auto();
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        let ab = fesia_core::intersect_count(&sa, &sb);
        let ba = fesia_core::intersect_count(&sb, &sa);
        assert_eq!(ab, ba, "seed={seed}");
        assert!(ab <= a.len().min(b.len()), "seed={seed}");
        // Self-intersection is identity.
        assert_eq!(
            fesia_core::intersect_count(&sa, &sa),
            a.len(),
            "seed={seed}"
        );
    }
}

#[test]
fn encoding_round_trips() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x4000 + seed);
        let a = sorted_set(&mut rng, 500);
        let params = FesiaParams::auto();
        let s = SegmentedSet::build(&a, &params).unwrap();
        assert!(s.validate(), "seed={seed}");
        assert_eq!(s.len(), a.len(), "seed={seed}");
        // The reordered array is a permutation of the input.
        let mut elems = s.reordered_elements().to_vec();
        elems.sort_unstable();
        assert_eq!(elems, a, "seed={seed}");
        // Membership is exact.
        for &x in a.iter().take(64) {
            assert!(s.contains(x), "seed={seed} x={x}");
        }
    }
}

#[test]
fn kway_equals_iterated_pairwise() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x5000 + seed);
        let a = sorted_set(&mut rng, 200);
        let b = sorted_set(&mut rng, 200);
        let c = sorted_set(&mut rng, 200);
        let ab = reference(&a, &b);
        let want = reference(&ab, &c).len();
        let params = FesiaParams::auto();
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        let sc = SegmentedSet::build(&c, &params).unwrap();
        assert_eq!(
            fesia_core::kway_count(&[&sa, &sb, &sc]),
            want,
            "seed={seed}"
        );
        for m in Method::all() {
            assert_eq!(
                m.kway_count(&[&a, &b, &c]),
                want,
                "seed={seed} method={}",
                m.name()
            );
        }
    }
}

#[test]
fn kernel_tables_agree_across_levels_on_tiny_runs() {
    use fesia_core::kernels::PaddedOperand;
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x6000 + seed);
        let n_a = rng.below(30) as usize;
        let n_b = rng.below(30) as usize;
        let mut a = std::collections::BTreeSet::new();
        while a.len() < n_a {
            a.insert(rng.below(10_000) as u32);
        }
        let mut b = std::collections::BTreeSet::new();
        while b.len() < n_b {
            b.insert(rng.below(10_000) as u32);
        }
        let av: Vec<u32> = a.into_iter().collect();
        let bv: Vec<u32> = b.into_iter().collect();
        let want = reference(&av, &bv).len() as u32;
        let pa = PaddedOperand::side_a(&av);
        let pb = PaddedOperand::side_b(&bv);
        for level in SimdLevel::available_levels() {
            for stride in [1usize, 2, 8] {
                let t = KernelTable::new(level, stride);
                assert_eq!(
                    t.count_operands(&pa, &pb),
                    want,
                    "seed={seed} level={level} stride={stride}"
                );
            }
        }
    }
}

#[test]
fn serialization_round_trips() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x7000 + seed);
        let a = sorted_set(&mut rng, 400);
        let params = FesiaParams::auto();
        let s = SegmentedSet::build(&a, &params).unwrap();
        let bytes = s.serialize();
        assert_eq!(bytes.len(), s.serialized_len(), "seed={seed}");
        let (back, used) = SegmentedSet::deserialize(&bytes).unwrap();
        assert_eq!(used, bytes.len(), "seed={seed}");
        assert!(back.validate(), "seed={seed}");
        assert_eq!(
            back.reordered_elements(),
            s.reordered_elements(),
            "seed={seed}"
        );
        assert_eq!(back.bitmap_bytes(), s.bitmap_bytes(), "seed={seed}");
    }
}

#[test]
fn u64_sets_count_the_reference() {
    use fesia_core::{intersect_count64, Fesia64Set};
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x8000 + seed);
        let shift = rng.below(33) as u32;
        let mut gen_u64 = |max_len: u64| -> Vec<u64> {
            let n = rng.below(max_len) as usize;
            let mut s = std::collections::BTreeSet::new();
            while s.len() < n {
                s.insert(rng.below(5_000_000) << shift);
            }
            s.into_iter().collect()
        };
        let av = gen_u64(200);
        let bv = gen_u64(200);
        let bs: std::collections::HashSet<u64> = bv.iter().copied().collect();
        let want = av.iter().filter(|x| bs.contains(x)).count();
        let params = FesiaParams::auto();
        let sa = Fesia64Set::build(&av, &params).unwrap();
        let sb = Fesia64Set::build(&bv, &params).unwrap();
        assert_eq!(
            intersect_count64(&sa, &sb),
            want,
            "seed={seed} shift={shift}"
        );
    }
}

#[test]
fn extraction_matches_reference_on_all_levels() {
    use fesia_core::kernels::extract::extract_into;
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x9000 + seed);
        let mut gen_small = |max_len: u64| -> Vec<u32> {
            let n = rng.below(max_len) as usize;
            let mut s = std::collections::BTreeSet::new();
            while s.len() < n {
                s.insert(rng.below(50_000) as u32);
            }
            s.into_iter().collect()
        };
        let av = gen_small(120);
        let bv = gen_small(120);
        let mut want = reference(&av, &bv);
        want.sort_unstable();
        for level in SimdLevel::available_levels() {
            let mut got = Vec::new();
            extract_into(level, &av, &bv, &mut got);
            got.sort_unstable();
            assert_eq!(got, want, "seed={seed} level={level}");
        }
    }
}

#[test]
fn breakdown_count_matches_fused() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0xA000 + seed);
        let (a, b) = overlapping_pair(&mut rng);
        let params = FesiaParams::auto();
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        let table = KernelTable::auto();
        let bd = fesia_core::intersect_count_breakdown(&sa, &sb, &table);
        assert_eq!(
            bd.count,
            fesia_core::intersect_count_with(&sa, &sb, &table),
            "seed={seed}"
        );
        // Every true match lives in a surviving segment.
        assert!(bd.count == 0 || bd.matched_segments > 0, "seed={seed}");
    }
}
