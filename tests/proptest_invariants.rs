//! Property-based invariants over arbitrary inputs (proptest).
//!
//! Strategy: generate arbitrary duplicate-free sorted sets (as value sets,
//! then sort), and assert that every method computes exactly the reference
//! intersection, that the segmented encoding round-trips, and that the
//! algebraic identities of intersection hold.

use fesia_baselines::Method;
use fesia_core::{FesiaParams, KernelTable, SegmentedSet, SimdLevel};
use proptest::collection::btree_set;
use proptest::prelude::*;

const DOMAIN: u32 = u32::MAX - 16;

fn sorted_set(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    btree_set(0..DOMAIN, 0..max_len).prop_map(|s| s.into_iter().collect())
}

/// A pair with forced overlap: some elements of `a` are spliced into `b`.
fn overlapping_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (sorted_set(300), sorted_set(300), any::<u64>()).prop_map(|(a, mut b, sel)| {
        for (i, &x) in a.iter().enumerate() {
            if (sel >> (i % 64)) & 1 == 1 {
                if let Err(pos) = b.binary_search(&x) {
                    b.insert(pos, x);
                }
            }
        }
        (a, b)
    })
}

fn reference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let bs: std::collections::HashSet<u32> = b.iter().copied().collect();
    a.iter().copied().filter(|x| bs.contains(x)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_baseline_counts_the_reference((a, b) in overlapping_pair()) {
        let want = reference(&a, &b).len();
        for m in Method::all() {
            prop_assert_eq!(m.count(&a, &b), want, "method {}", m.name());
        }
    }

    #[test]
    fn fesia_counts_the_reference((a, b) in overlapping_pair()) {
        let want = reference(&a, &b).len();
        let params = FesiaParams::auto();
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        prop_assert_eq!(fesia_core::intersect_count(&sa, &sb), want);
        prop_assert_eq!(fesia_core::intersect(&sa, &sb), reference(&a, &b));
        prop_assert_eq!(fesia_core::auto_count(&sa, &sb), want);
        prop_assert_eq!(fesia_core::hash_probe_count(&a, &sb), want);
    }

    #[test]
    fn intersection_is_commutative_and_bounded((a, b) in overlapping_pair()) {
        let params = FesiaParams::auto();
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        let ab = fesia_core::intersect_count(&sa, &sb);
        let ba = fesia_core::intersect_count(&sb, &sa);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= a.len().min(b.len()));
        // Self-intersection is identity.
        prop_assert_eq!(fesia_core::intersect_count(&sa, &sa), a.len());
    }

    #[test]
    fn encoding_round_trips(a in sorted_set(500)) {
        let params = FesiaParams::auto();
        let s = SegmentedSet::build(&a, &params).unwrap();
        prop_assert!(s.validate());
        prop_assert_eq!(s.len(), a.len());
        // The reordered array is a permutation of the input.
        let mut elems = s.reordered_elements().to_vec();
        elems.sort_unstable();
        prop_assert_eq!(elems, a.clone());
        // Membership is exact.
        for &x in a.iter().take(64) {
            prop_assert!(s.contains(x));
        }
    }

    #[test]
    fn kway_equals_iterated_pairwise(
        a in sorted_set(200),
        b in sorted_set(200),
        c in sorted_set(200),
    ) {
        let ab = reference(&a, &b);
        let want = reference(&ab, &c).len();
        let params = FesiaParams::auto();
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        let sc = SegmentedSet::build(&c, &params).unwrap();
        prop_assert_eq!(fesia_core::kway_count(&[&sa, &sb, &sc]), want);
        for m in Method::all() {
            prop_assert_eq!(m.kway_count(&[&a, &b, &c]), want, "method {}", m.name());
        }
    }

    #[test]
    fn kernel_tables_agree_across_levels_on_tiny_runs(
        a in btree_set(0u32..10_000, 0..30),
        b in btree_set(0u32..10_000, 0..30),
    ) {
        use fesia_core::kernels::PaddedOperand;
        let av: Vec<u32> = a.into_iter().collect();
        let bv: Vec<u32> = b.into_iter().collect();
        let want = reference(&av, &bv).len() as u32;
        let pa = PaddedOperand::side_a(&av);
        let pb = PaddedOperand::side_b(&bv);
        for level in SimdLevel::available_levels() {
            for stride in [1usize, 2, 8] {
                let t = KernelTable::new(level, stride);
                prop_assert_eq!(
                    t.count_operands(&pa, &pb), want,
                    "level={} stride={}", level, stride
                );
            }
        }
    }

    #[test]
    fn serialization_round_trips(a in sorted_set(400)) {
        let params = FesiaParams::auto();
        let s = SegmentedSet::build(&a, &params).unwrap();
        let bytes = s.serialize();
        prop_assert_eq!(bytes.len(), s.serialized_len());
        let (back, used) = SegmentedSet::deserialize(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert!(back.validate());
        prop_assert_eq!(back.reordered_elements(), s.reordered_elements());
        prop_assert_eq!(back.bitmap_bytes(), s.bitmap_bytes());
    }

    #[test]
    fn u64_sets_count_the_reference(
        a in btree_set(0u64..5_000_000, 0..200),
        b in btree_set(0u64..5_000_000, 0..200),
        shift in 0u32..33,
    ) {
        use fesia_core::{intersect_count64, Fesia64Set};
        // Spread values across high-32 groups by shifting.
        let av: Vec<u64> = a.iter().map(|&x| x << shift).collect();
        let bv: Vec<u64> = b.iter().map(|&x| x << shift).collect();
        let bs: std::collections::HashSet<u64> = bv.iter().copied().collect();
        let want = av.iter().filter(|x| bs.contains(x)).count();
        let params = FesiaParams::auto();
        let sa = Fesia64Set::build(&av, &params).unwrap();
        let sb = Fesia64Set::build(&bv, &params).unwrap();
        prop_assert_eq!(intersect_count64(&sa, &sb), want);
    }

    #[test]
    fn extraction_matches_reference_on_all_levels(
        a in btree_set(0u32..50_000, 0..120),
        b in btree_set(0u32..50_000, 0..120),
    ) {
        use fesia_core::kernels::extract::extract_into;
        let av: Vec<u32> = a.into_iter().collect();
        let bv: Vec<u32> = b.into_iter().collect();
        let mut want = reference(&av, &bv);
        want.sort_unstable();
        for level in SimdLevel::available_levels() {
            let mut got = Vec::new();
            extract_into(level, &av, &bv, &mut got);
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "level={}", level);
        }
    }

    #[test]
    fn breakdown_count_matches_fused((a, b) in overlapping_pair()) {
        let params = FesiaParams::auto();
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        let table = KernelTable::auto();
        let bd = fesia_core::intersect_count_breakdown(&sa, &sb, &table);
        prop_assert_eq!(bd.count, fesia_core::intersect_count_with(&sa, &sb, &table));
        // Every true match lives in a surviving segment.
        prop_assert!(bd.count == 0 || bd.matched_segments > 0);
    }
}
