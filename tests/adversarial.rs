//! Adversarial workloads: inputs crafted to stress specific code paths —
//! hash-collision pileups, domain extremes, vector-width boundaries,
//! pathological run shapes — through every intersection method at once.

use fesia_baselines::Method;
use fesia_core::{FesiaParams, KernelTable, SegmentedSet, SimdLevel, MAX_ELEMENT};

fn reference(a: &[u32], b: &[u32]) -> usize {
    let bs: std::collections::HashSet<u32> = b.iter().copied().collect();
    a.iter().filter(|x| bs.contains(x)).count()
}

fn check_everyone(name: &str, a: &[u32], b: &[u32]) {
    let want = reference(a, b);
    for m in Method::all() {
        assert_eq!(m.count(a, b), want, "{name}: {}", m.name());
        assert_eq!(m.count(b, a), want, "{name}: {} swapped", m.name());
    }
    for level in SimdLevel::available_levels() {
        let params = FesiaParams::for_level(level);
        let sa = SegmentedSet::build(a, &params).unwrap();
        let sb = SegmentedSet::build(b, &params).unwrap();
        for stride in [1usize, 8] {
            let t = KernelTable::new(level, stride);
            assert_eq!(
                fesia_core::intersect_count_with(&sa, &sb, &t),
                want,
                "{name}: FESIA {level}/s{stride}"
            );
        }
        assert_eq!(
            fesia_core::auto_count(&sa, &sb),
            want,
            "{name}: auto {level}"
        );
        let got = fesia_core::intersect(&sa, &sb);
        assert_eq!(got.len(), want, "{name}: materialize {level}");
    }
}

#[test]
fn domain_extremes() {
    // Values hugging the top of the element domain (adjacent to the
    // reserved SIMD sentinels).
    let a: Vec<u32> = (0..200).map(|i| MAX_ELEMENT - 2 * i).rev().collect();
    let b: Vec<u32> = (0..200).map(|i| MAX_ELEMENT - 3 * i).rev().collect();
    check_everyone("top-of-domain", &a, &b);
    // And the very bottom.
    let c: Vec<u32> = (0..64).collect();
    let d: Vec<u32> = (0..64).map(|i| i * 2).collect();
    check_everyone("bottom-of-domain", &c, &d);
}

#[test]
fn vector_width_boundaries() {
    // Every length in 1..=33 against every length in 1..=33 would be 1089
    // cases; sample the boundary-adjacent ones (V and 2V for all ISAs).
    for &na in &[1usize, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
        for &nb in &[1usize, 4, 8, 16, 32, 33] {
            let a: Vec<u32> = (0..na as u32).map(|i| i * 5 + 1).collect();
            let b: Vec<u32> = (0..nb as u32).map(|i| i * 3 + 1).collect();
            check_everyone(&format!("widths {na}x{nb}"), &a, &b);
        }
    }
}

#[test]
fn hash_pileup_single_segment() {
    // A tiny bitmap rams thousands of elements into each segment,
    // exercising the merge fallback beyond every table's TMAX.
    let a: Vec<u32> = (0..20_000u32).map(|i| i * 2).collect();
    let b: Vec<u32> = (0..20_000u32).map(|i| i * 3).collect();
    let want = reference(&a, &b);
    let params = FesiaParams::auto().with_bits_per_element(0.001);
    let sa = SegmentedSet::build(&a, &params).unwrap();
    let sb = SegmentedSet::build(&b, &params).unwrap();
    assert_eq!(sa.bitmap_bits(), 512, "floor bitmap expected");
    for level in SimdLevel::available_levels() {
        let t = KernelTable::new(level, 1);
        assert_eq!(
            fesia_core::intersect_count_with(&sa, &sb, &t),
            want,
            "level={level}"
        );
    }
}

#[test]
fn interleaved_and_nested_runs() {
    // Perfectly interleaved: no matches, maximal pointer ping-pong.
    let a: Vec<u32> = (0..5_000).map(|i| i * 2).collect();
    let b: Vec<u32> = (0..5_000).map(|i| i * 2 + 1).collect();
    check_everyone("interleaved", &a, &b);
    // Nested: one run strictly inside a gap of the other.
    let c: Vec<u32> = (0..1_000).chain(900_000..901_000).collect();
    let d: Vec<u32> = (400_000..402_000).collect();
    check_everyone("nested", &c, &d);
    // Block-aligned stripes (hits the shuffling advance logic).
    let e: Vec<u32> = (0..4_096).map(|i| (i / 8) * 64 + (i % 8)).collect();
    let f: Vec<u32> = (0..4_096).map(|i| (i / 8) * 64 + (i % 8) + 8).collect();
    check_everyone("stripes", &e, &f);
}

#[test]
fn powers_of_two_and_bit_patterns() {
    // Values with pathological bit structure for multiplicative hashing.
    let a: Vec<u32> = (0..31).map(|i| 1u32 << i).collect();
    let b: Vec<u32> = (0..31).map(|i| (1u32 << i) | 1).collect();
    check_everyone("powers-of-two", &a, &b);
    let c: Vec<u32> = (1u64..2_000)
        .map(|i| (i * 0x0101_0101 % (MAX_ELEMENT as u64 / 2)) as u32)
        .collect::<std::collections::BTreeSet<u32>>()
        .into_iter()
        .collect();
    let d: Vec<u32> = (1u64..2_000)
        .map(|i| (i * 0x1010_1010 % (MAX_ELEMENT as u64 / 2)) as u32)
        .collect::<std::collections::BTreeSet<u32>>()
        .into_iter()
        .collect();
    check_everyone("repeating-bytes", &c, &d);
}

#[test]
fn one_sided_extremes() {
    let single = vec![123_456u32];
    let big: Vec<u32> = (0..100_000).map(|i| i * 7).collect();
    check_everyone("singleton-vs-big", &single, &big);
    let empty: Vec<u32> = vec![];
    check_everyone("empty-vs-big", &empty, &big);
}

#[test]
fn u16_lane_width_under_adversarial_load() {
    use fesia_core::LaneWidth;
    let a: Vec<u32> = (0..8_000u32).map(|i| i * 11).collect();
    let b: Vec<u32> = (0..8_000u32).map(|i| i * 7).collect();
    let want = reference(&a, &b);
    for level in SimdLevel::available_levels() {
        let params = FesiaParams::for_level(level).with_segment(LaneWidth::U16);
        let sa = SegmentedSet::build(&a, &params).unwrap();
        let sb = SegmentedSet::build(&b, &params).unwrap();
        let t = KernelTable::new(level, 1);
        assert_eq!(
            fesia_core::intersect_count_with(&sa, &sb, &t),
            want,
            "u16 level={level}"
        );
        // k-way over u16-lane sets.
        let sc = SegmentedSet::build(&a, &params).unwrap();
        assert_eq!(
            fesia_core::kway_count_with(&[&sa, &sb, &sc], &t),
            want,
            "u16 kway level={level}"
        );
    }
}
