//! Cross-checks of the always-on `fesia-obs` runtime metrics against
//! independently computed ground truth.
//!
//! The metrics registry is process-global, so these tests serialize on a
//! local mutex: each test's snapshot-delta window must not observe
//! another test's events. (Other test *binaries* are separate processes
//! with separate registries, so only this file needs the lock.)

use fesia_core::{
    batch_count, pipeline_params, set_pipeline_params, FesiaParams, PipelineParams, SegmentedSet,
};
use fesia_exec::Executor;
use fesia_obs::metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize_tests() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn gen_sorted(n: usize, seed: u64, universe: u32) -> Vec<u32> {
    let mut state = seed | 1;
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        set.insert((state % universe as u64) as u32);
    }
    set.into_iter().collect()
}

/// The survivor-segment counter (published by the pipelined dispatch)
/// must equal the offline diagnostic `stats::survivor_segments`, for
/// both equal-size and folded bitmap pairs.
#[test]
fn survivor_counter_matches_offline_diagnostic() {
    let _guard = serialize_tests();
    let p = FesiaParams::auto();
    let cases = [
        // Equal bitmap sizes.
        (gen_sorted(4_000, 11, 60_000), gen_sorted(4_000, 13, 60_000)),
        // Very different sizes -> folded bitmaps.
        (
            gen_sorted(150, 17, 800_000),
            gen_sorted(40_000, 19, 800_000),
        ),
    ];
    let saved = pipeline_params();
    for (av, bv) in &cases {
        let a = SegmentedSet::build(av, &p).unwrap();
        let b = SegmentedSet::build(bv, &p).unwrap();
        let want_survivors = fesia_core::survivor_segments(&a, &b);
        // Force the pipelined dispatch (the interleaved form never
        // materializes its survivor list, so it cannot count them).
        set_pipeline_params(PipelineParams::default().with_min_elements(0));
        let before = metrics().snapshot();
        let count = fesia_core::intersect_count(&a, &b);
        let d = metrics().snapshot().delta(&before);
        assert_eq!(d.intersect_pipelined, 1);
        assert_eq!(d.intersect_interleaved, 0);
        assert_eq!(d.survivor_segments as usize, want_survivors);
        // True matches always survive the filter.
        assert!(want_survivors >= count, "{want_survivors} < {count}");
    }
    set_pipeline_params(saved);
}

/// Over a batch, every pair takes exactly one strategy: the two strategy
/// counters must sum to the number of pairs, and the batch rollups must
/// match the submitted workload.
#[test]
fn strategy_counters_sum_to_batch_pairs() {
    let _guard = serialize_tests();
    let p = FesiaParams::auto();
    // A size mix straddling the skew threshold (plus an empty set) so
    // both strategies are exercised in one batch.
    let lists = [
        gen_sorted(4_000, 21, 80_000),
        gen_sorted(4_000, 23, 80_000),
        gen_sorted(100, 25, 80_000),
        Vec::new(),
    ];
    let sets: Vec<SegmentedSet> = lists
        .iter()
        .map(|l| SegmentedSet::build(l, &p).unwrap())
        .collect();
    let pairs: Vec<(u32, u32)> = (0..4u32)
        .flat_map(|i| (0..4u32).map(move |j| (i, j)))
        .collect();
    let before = metrics().snapshot();
    let counts = batch_count(&sets, &pairs);
    let d = metrics().snapshot().delta(&before);
    assert_eq!(counts.len(), pairs.len());
    assert_eq!(d.batch_calls, 1);
    assert_eq!(d.batch_pairs, pairs.len() as u64);
    assert_eq!(
        d.strategy_merge + d.strategy_hash,
        pairs.len() as u64,
        "every adaptive intersection takes exactly one strategy"
    );
    assert!(
        d.strategy_merge > 0,
        "size mix should route some pairs to merge"
    );
    assert!(
        d.strategy_hash > 0,
        "skewed/empty pairs should route to hash"
    );
}

/// The executor's chunk-claim counter must equal the number of chunk
/// closures actually invoked, and region submissions must land in the
/// right counter (pooled vs inline).
#[test]
fn chunk_claims_match_chunks_executed() {
    let _guard = serialize_tests();
    let exec = Executor::new(4);

    // Pooled region: chunks counted exactly once each.
    let executed = AtomicU64::new(0);
    let before = metrics().snapshot();
    exec.for_each_chunk(10_000, 1, 0, |_r| {
        executed.fetch_add(1, Ordering::Relaxed);
    });
    let want = executed.load(Ordering::Relaxed);
    assert!(want > 1, "must actually split into chunks");
    // Workers publish their claim totals after the region completes, so
    // the submitter can observe the delta slightly before the last
    // worker's batched add lands; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    let d = loop {
        let d = metrics().snapshot().delta(&before);
        if d.exec_chunks_claimed == want || Instant::now() > deadline {
            break d;
        }
        std::thread::yield_now();
    };
    assert_eq!(d.exec_chunks_claimed, want);
    assert_eq!(d.exec_regions, 1);
    assert_eq!(d.exec_regions_inline, 0);
    assert!(d.exec_chunks_per_claim.total() > 0);

    // Inline region (participant cap of 1): no pool involvement, no
    // chunk claims.
    let before = metrics().snapshot();
    exec.for_each_chunk(10, 1, 1, |_r| {});
    let d = metrics().snapshot().delta(&before);
    assert_eq!(d.exec_regions_inline, 1);
    assert_eq!(d.exec_regions, 0);
    assert_eq!(d.exec_chunks_claimed, 0);
}

/// The interleaved/pipelined dispatch counters track the process-wide
/// pipeline knob.
#[test]
fn dispatch_counters_follow_pipeline_knob() {
    let _guard = serialize_tests();
    let p = FesiaParams::auto();
    let a = SegmentedSet::build(&gen_sorted(2_000, 31, 40_000), &p).unwrap();
    let b = SegmentedSet::build(&gen_sorted(2_000, 37, 40_000), &p).unwrap();
    let saved = pipeline_params();

    set_pipeline_params(PipelineParams::default().with_enabled(false));
    let before = metrics().snapshot();
    let want = fesia_core::intersect_count(&a, &b);
    let d = metrics().snapshot().delta(&before);
    assert_eq!(d.intersect_interleaved, 1);
    assert_eq!(d.intersect_pipelined, 0);

    set_pipeline_params(PipelineParams::default().with_min_elements(0));
    let before = metrics().snapshot();
    assert_eq!(fesia_core::intersect_count(&a, &b), want);
    let d = metrics().snapshot().delta(&before);
    assert_eq!(d.intersect_pipelined, 1);
    assert_eq!(d.intersect_interleaved, 0);
    // The pipelined dispatch reuses this thread's scratch buffer from
    // the second call on.
    let before = metrics().snapshot();
    assert_eq!(fesia_core::intersect_count(&a, &b), want);
    let d = metrics().snapshot().delta(&before);
    assert_eq!(d.scratch_reused, 1);

    set_pipeline_params(saved);
}
