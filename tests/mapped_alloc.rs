//! Evidence for the v3 zero-copy claim: decoding a set block from a
//! mapped corpus performs **zero heap allocations** — every array of the
//! returned [`SegmentedSet`] is a view into the mapping.
//!
//! A counting global allocator (thread-local counter, so parallel test
//! threads cannot pollute each other) wraps [`std::alloc::System`]; the
//! decode under test must leave the counter untouched.

use fesia_core::{FesiaParams, MappedFile, SegmentedSet};
use fesia_datagen::{sorted_distinct, SplitMix64};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter is
// thread-local and allocation-free (const-initialized `Cell`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn mapped_decode_allocates_nothing_per_set() {
    // Large enough that the builder attaches the packed tier, so the
    // claim covers all five sections including the residual stream.
    let mut rng = SplitMix64::new(0xA110C);
    let v = sorted_distinct(200_000, 1 << 24, &mut rng);
    let set = SegmentedSet::build(&v, &FesiaParams::auto()).unwrap();
    assert!(set.packed().is_some(), "tier must be present for the claim");

    let path = std::env::temp_dir().join("fesia_mapped_alloc_test.fsia");
    std::fs::write(&path, set.serialize()).unwrap();
    let file = Arc::new(MappedFile::open(&path).unwrap());
    let _ = std::fs::remove_file(&path);

    // Warm-up: first decode may lazily initialize process-wide state
    // (metrics registry, knob parsing) that is not per-set cost.
    let (warm, _) = SegmentedSet::deserialize_mapped(&file, 0).unwrap();
    assert!(warm.validate());

    let before = allocs();
    let (decoded, used) = SegmentedSet::deserialize_mapped(&file, 0).unwrap();
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "mapped v3 decode must not touch the heap"
    );
    assert_eq!(used, file.len());
    assert_eq!(decoded.len(), 200_000);
    assert!(
        decoded.packed().is_some(),
        "tier must survive the mmap path"
    );

    // The decoded views really are zero-copy: they point inside the
    // mapping, not at fresh heap memory.
    let range = file.bytes().as_ptr_range();
    let elem_ptr = decoded.reordered_elements().as_ptr() as *const u8;
    assert!(range.contains(&elem_ptr), "elements must alias the mapping");
    drop(file);
    assert!(decoded.validate(), "the set's Arc keeps the mapping alive");
}
