//! Fuzz-style robustness tests for the persistence format: arbitrary
//! corruption of a serialized [`SegmentedSet`] must never panic, never
//! read out of bounds, and never produce a structurally invalid set —
//! the decoder either returns `Err` or a set that passes `validate()`.

use fesia_core::{deserialize_many, serialize_many, FesiaParams, MappedFile, SegmentedSet};
use fesia_datagen::{sorted_distinct, SplitMix64};
use std::sync::Arc;

fn sample(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let v = sorted_distinct(n, 1 << 22, &mut rng);
    SegmentedSet::build(&v, &FesiaParams::auto())
        .unwrap()
        .serialize()
}

fn sample_many(sizes: &[usize], seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let sets: Vec<SegmentedSet> = sizes
        .iter()
        .map(|&n| {
            let v = sorted_distinct(n, 1 << 22, &mut rng);
            SegmentedSet::build(&v, &FesiaParams::auto()).unwrap()
        })
        .collect();
    serialize_many(&sets)
}

#[test]
fn single_byte_flips_never_panic() {
    let bytes = sample(400, 1);
    let mut rng = SplitMix64::new(2);
    // Exhaustive over the header, sampled over the body.
    let positions: Vec<usize> = (0..64.min(bytes.len()))
        .chain((0..400).map(|_| rng.below(bytes.len() as u64) as usize))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut m = bytes.clone();
            m[pos] ^= flip;
            match SegmentedSet::deserialize(&m) {
                Err(_) => {}
                Ok((set, used)) => {
                    assert!(
                        set.validate(),
                        "pos={pos} flip={flip:#x} decoded invalid set"
                    );
                    assert!(used <= m.len());
                }
            }
        }
    }
}

#[test]
fn truncations_never_panic() {
    let bytes = sample(300, 3);
    for cut in 0..bytes.len() {
        match SegmentedSet::deserialize(&bytes[..cut]) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "cut={cut}"),
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix64::new(7);
    for len in [0usize, 1, 4, 15, 16, 64, 500, 5_000] {
        for trial in 0..20 {
            let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            match SegmentedSet::deserialize(&buf) {
                Err(_) => {}
                Ok((set, _)) => assert!(set.validate(), "len={len} trial={trial}"),
            }
        }
    }
}

#[test]
fn garbage_with_valid_magic_never_panics() {
    let mut rng = SplitMix64::new(11);
    for trial in 0..200 {
        let len = 15 + rng.below(2_000) as usize;
        let mut buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        buf[0..4].copy_from_slice(b"FSIA");
        buf[4] = 1; // valid version
        match SegmentedSet::deserialize(&buf) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "trial={trial}"),
        }
    }
}

#[test]
fn length_field_attacks_are_contained() {
    // Declare absurd n / log2_m values and ensure bounds hold.
    let bytes = sample(100, 13);
    for (pos, val) in [
        (6usize, 40u8),
        (6, 0),
        (7, 0xFF),
        (14, 0xFF),
        (5, 12),
        (5, 0),
    ] {
        let mut m = bytes.clone();
        m[pos] = val;
        match SegmentedSet::deserialize(&m) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "pos={pos} val={val}"),
        }
    }
}

/// The 8-byte count field of a `serialize_many` buffer is attacker
/// controlled: any value — including ones that would ask
/// `Vec::with_capacity` for petabytes — must yield `Err` or a short,
/// valid prefix of sets, never a panic or an abort-sized allocation.
#[test]
fn many_header_count_attacks_are_contained() {
    let bytes = sample_many(&[200, 300], 19);
    let attacks: [u64; 9] = [
        0,
        1,
        2,
        3,
        1_000,
        u32::MAX as u64,
        u64::MAX / 15,
        u64::MAX / 2,
        u64::MAX,
    ];
    for count in attacks {
        let mut m = bytes.clone();
        m[..8].copy_from_slice(&count.to_le_bytes());
        match deserialize_many(&m) {
            Err(_) => {}
            Ok(sets) => {
                assert!(
                    sets.len() <= 2,
                    "count={count}: more sets than the buffer holds"
                );
                assert_eq!(sets.len() as u64, count, "count={count}");
                for s in &sets {
                    assert!(s.validate(), "count={count}");
                }
            }
        }
    }
}

#[test]
fn many_truncations_never_panic() {
    let bytes = sample_many(&[120, 80, 250], 23);
    // Every prefix, including cuts through the count field, the headers,
    // and mid-set bodies.
    for cut in 0..bytes.len() {
        match deserialize_many(&bytes[..cut]) {
            Err(_) => {}
            Ok(sets) => {
                for s in &sets {
                    assert!(s.validate(), "cut={cut}");
                }
            }
        }
    }
    // The untruncated buffer round-trips.
    assert_eq!(deserialize_many(&bytes).unwrap().len(), 3);
}

#[test]
fn many_byte_flips_never_panic() {
    let bytes = sample_many(&[150, 150], 29);
    let mut rng = SplitMix64::new(31);
    // Exhaustive over the count field and both per-set header regions'
    // first bytes, sampled over the rest of the concatenated buffer.
    let positions: Vec<usize> = (0..32.min(bytes.len()))
        .chain((0..600).map(|_| rng.below(bytes.len() as u64) as usize))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut m = bytes.clone();
            m[pos] ^= flip;
            match deserialize_many(&m) {
                Err(_) => {}
                Ok(sets) => {
                    for s in &sets {
                        assert!(s.validate(), "pos={pos} flip={flip:#x}");
                    }
                }
            }
        }
    }
}

#[test]
fn many_round_trips_including_empty() {
    // Zero sets, one empty set, and a mix — all must round-trip exactly.
    assert!(deserialize_many(&serialize_many(&[])).unwrap().is_empty());
    let p = FesiaParams::auto();
    let sets = vec![
        SegmentedSet::build(&[], &p).unwrap(),
        SegmentedSet::build(&[1, 2, 3], &p).unwrap(),
    ];
    let back = deserialize_many(&serialize_many(&sets)).unwrap();
    assert_eq!(back.len(), 2);
    assert_eq!(back[0].len(), 0);
    assert_eq!(back[1].len(), 3);
    assert!(back[1].contains(2));
}

/// The zero-copy decoder trusts section *content* but must reject every
/// structurally hostile header or section table without panicking or
/// reading out of bounds. Flip every byte of the v3 fixed part (header +
/// section table fill the first 128 bytes) through both decode paths.
#[test]
fn v3_section_table_flips_never_panic() {
    let bytes = sample(500, 37);
    assert_eq!(bytes[4], 3, "sample should serialize as v3");
    for pos in 0..128.min(bytes.len()) {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut m = bytes.clone();
            m[pos] ^= flip;
            match SegmentedSet::deserialize(&m) {
                Err(_) => {}
                Ok((set, used)) => {
                    assert!(set.validate(), "owned pos={pos} flip={flip:#x}");
                    assert!(used <= m.len());
                }
            }
            // The mapped decoder trusts section *content* (a flipped
            // offset may select different-but-in-bounds bytes), so the
            // contract here is weaker than `validate()`: decode must not
            // panic and the set must be structurally usable.
            let file = Arc::new(MappedFile::from_bytes(m));
            match SegmentedSet::deserialize_mapped(&file, 0) {
                Err(_) => {}
                Ok((set, used)) => {
                    assert!(used <= file.len(), "mapped pos={pos} flip={flip:#x}");
                    let _ = set.len();
                    let _ = fesia_core::intersect_count(&set, &set);
                }
            }
        }
    }
}

/// Section-table forgeries beyond single-byte flips: offsets/lengths that
/// overlap, point past the buffer, wrap around `usize`, or shrink the
/// elements section below what the segment metadata implies.
#[test]
fn v3_hostile_section_tables_are_rejected() {
    let bytes = sample(400, 41);
    // The table lives at bytes 32..112: five (offset u64, len u64) pairs.
    let forgeries: &[(usize, u64)] = &[
        (32, u64::MAX),               // bitmap offset wraps
        (40, u64::MAX - 7),           // bitmap length wraps
        (48, 0),                      // summary offset inside the header
        (56, 1 << 40),                // summary length absurd
        (64, bytes.len() as u64),     // seg-meta offset at EOF
        (72, 8),                      // seg-meta length mismatching n
        (80, 64),                     // elements offset overlapping summary
        (88, 4),                      // elements length below n
        (96, bytes.len() as u64 * 2), // packed offset past EOF
        (104, u64::MAX / 2),          // packed length wraps
    ];
    for &(pos, val) in forgeries {
        let mut m = bytes.clone();
        m[pos..pos + 8].copy_from_slice(&val.to_le_bytes());
        match SegmentedSet::deserialize(&m) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "owned pos={pos} val={val}"),
        }
        let file = Arc::new(MappedFile::from_bytes(m));
        match SegmentedSet::deserialize_mapped(&file, 0) {
            Err(_) => {}
            // Content is trusted on this path; structural use must hold.
            Ok((set, _)) => {
                let _ = fesia_core::intersect_count(&set, &set);
            }
        }
    }
}

/// Every truncation of a v3 buffer through the mapped path, plus `at`
/// offsets pointing anywhere (aligned or not, in bounds or not).
#[test]
fn mapped_truncations_and_offsets_never_panic() {
    let bytes = sample(300, 43);
    let n = bytes.len();
    for cut in 0..n {
        let file = Arc::new(MappedFile::from_bytes(bytes[..cut].to_vec()));
        match SegmentedSet::deserialize_mapped(&file, 0) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "cut={cut}"),
        }
    }
    let file = Arc::new(MappedFile::from_bytes(bytes));
    let mut rng = SplitMix64::new(47);
    let offsets: Vec<usize> = (0..64)
        .chain((0..100).map(|_| rng.below(2 * n as u64) as usize))
        .chain([n - 1, n, n + 1, usize::MAX])
        .collect();
    for at in offsets {
        match SegmentedSet::deserialize_mapped(&file, at) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "at={at}"),
        }
    }
}

/// Random garbage stamped with a valid v3 magic/version must never get
/// past the mapped decoder's structural checks with an invalid set.
#[test]
fn mapped_garbage_with_valid_magic_never_panics() {
    let mut rng = SplitMix64::new(53);
    for trial in 0..200 {
        let len = 15 + rng.below(4_000) as usize;
        let mut buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        buf[0..4].copy_from_slice(b"FSIA");
        buf[4] = 3;
        let file = Arc::new(MappedFile::from_bytes(buf));
        match SegmentedSet::deserialize_mapped(&file, 0) {
            Err(_) => {}
            Ok((set, _)) => {
                let _ = fesia_core::intersect_count(&set, &set);
                let _ = trial;
            }
        }
    }
}

/// The owned decoder copies into fresh allocations, so it must accept a
/// v3 buffer at any byte alignment (mapped views may legitimately refuse).
#[test]
fn misaligned_buffers_decode_on_the_owned_path() {
    let bytes = sample(250, 59);
    let (want, _) = SegmentedSet::deserialize(&bytes).unwrap();
    for shift in 1..8 {
        let mut shifted = vec![0u8; shift];
        shifted.extend_from_slice(&bytes);
        let (set, used) = SegmentedSet::deserialize(&shifted[shift..]).unwrap();
        assert_eq!(used, bytes.len(), "shift={shift}");
        assert_eq!(set.len(), want.len(), "shift={shift}");
        assert!(set.validate(), "shift={shift}");
    }
}

/// A v2 buffer decoded and re-serialized must produce a v3 set that is
/// indistinguishable in every intersection path — the compressed tier the
/// re-encode gains changes representation, never answers.
#[test]
fn v2_to_v3_reencode_preserves_behavior() {
    let mut rng = SplitMix64::new(61);
    let av = sorted_distinct(2_500, 1 << 20, &mut rng);
    let bv = sorted_distinct(2_500, 1 << 20, &mut rng);
    let params = FesiaParams::auto();
    let a0 = SegmentedSet::build(&av, &params).unwrap();
    let b0 = SegmentedSet::build(&bv, &params).unwrap();
    let (a2, _) = SegmentedSet::deserialize(&a0.serialize_v2()).unwrap();
    let v3 = a2.serialize();
    assert_eq!(v3[4], 3);
    let (a3, used) = SegmentedSet::deserialize(&v3).unwrap();
    assert_eq!(used, v3.len());
    // And through the zero-copy path of the same buffer.
    let file = Arc::new(MappedFile::from_bytes(v3));
    let (am, _) = SegmentedSet::deserialize_mapped(&file, 0).expect("mapped decode of re-encode");
    for x in [&a2, &a3, &am] {
        assert_eq!(
            fesia_core::intersect_count(x, &b0),
            fesia_core::intersect_count(&a0, &b0)
        );
        assert_eq!(
            fesia_core::intersect(x, &b0),
            fesia_core::intersect(&a0, &b0)
        );
    }
}

#[test]
fn decoded_sets_behave_identically_to_originals() {
    // Round-trip then use in every algorithm — end-to-end sanity that the
    // decoder's output is a first-class set.
    let mut rng = SplitMix64::new(17);
    let av = sorted_distinct(3_000, 1 << 20, &mut rng);
    let bv = sorted_distinct(3_000, 1 << 20, &mut rng);
    let params = FesiaParams::auto();
    let a0 = SegmentedSet::build(&av, &params).unwrap();
    let b0 = SegmentedSet::build(&bv, &params).unwrap();
    let (a, _) = SegmentedSet::deserialize(&a0.serialize()).unwrap();
    let (b, _) = SegmentedSet::deserialize(&b0.serialize()).unwrap();
    assert_eq!(
        fesia_core::intersect_count(&a, &b),
        fesia_core::intersect_count(&a0, &b0)
    );
    assert_eq!(
        fesia_core::intersect(&a, &b),
        fesia_core::intersect(&a0, &b0)
    );
    assert_eq!(
        fesia_core::auto_count(&a, &b),
        fesia_core::auto_count(&a0, &b0)
    );
    assert_eq!(
        fesia_core::kway_count(&[&a, &b, &a0]),
        fesia_core::kway_count(&[&a0, &b0, &a0])
    );
}
