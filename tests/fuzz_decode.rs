//! Fuzz-style robustness tests for the persistence format: arbitrary
//! corruption of a serialized [`SegmentedSet`] must never panic, never
//! read out of bounds, and never produce a structurally invalid set —
//! the decoder either returns `Err` or a set that passes `validate()`.

use fesia_core::{FesiaParams, SegmentedSet};
use fesia_datagen::{sorted_distinct, SplitMix64};

fn sample(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let v = sorted_distinct(n, 1 << 22, &mut rng);
    SegmentedSet::build(&v, &FesiaParams::auto()).unwrap().serialize()
}

#[test]
fn single_byte_flips_never_panic() {
    let bytes = sample(400, 1);
    let mut rng = SplitMix64::new(2);
    // Exhaustive over the header, sampled over the body.
    let positions: Vec<usize> = (0..64.min(bytes.len()))
        .chain((0..400).map(|_| rng.below(bytes.len() as u64) as usize))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut m = bytes.clone();
            m[pos] ^= flip;
            match SegmentedSet::deserialize(&m) {
                Err(_) => {}
                Ok((set, used)) => {
                    assert!(set.validate(), "pos={pos} flip={flip:#x} decoded invalid set");
                    assert!(used <= m.len());
                }
            }
        }
    }
}

#[test]
fn truncations_never_panic() {
    let bytes = sample(300, 3);
    for cut in 0..bytes.len() {
        match SegmentedSet::deserialize(&bytes[..cut]) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "cut={cut}"),
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix64::new(7);
    for len in [0usize, 1, 4, 15, 16, 64, 500, 5_000] {
        for trial in 0..20 {
            let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            match SegmentedSet::deserialize(&buf) {
                Err(_) => {}
                Ok((set, _)) => assert!(set.validate(), "len={len} trial={trial}"),
            }
        }
    }
}

#[test]
fn garbage_with_valid_magic_never_panics() {
    let mut rng = SplitMix64::new(11);
    for trial in 0..200 {
        let len = 15 + rng.below(2_000) as usize;
        let mut buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        buf[0..4].copy_from_slice(b"FSIA");
        buf[4] = 1; // valid version
        match SegmentedSet::deserialize(&buf) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "trial={trial}"),
        }
    }
}

#[test]
fn length_field_attacks_are_contained() {
    // Declare absurd n / log2_m values and ensure bounds hold.
    let bytes = sample(100, 13);
    for (pos, val) in [(6usize, 40u8), (6, 0), (7, 0xFF), (14, 0xFF), (5, 12), (5, 0)] {
        let mut m = bytes.clone();
        m[pos] = val;
        match SegmentedSet::deserialize(&m) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "pos={pos} val={val}"),
        }
    }
}

#[test]
fn decoded_sets_behave_identically_to_originals() {
    // Round-trip then use in every algorithm — end-to-end sanity that the
    // decoder's output is a first-class set.
    let mut rng = SplitMix64::new(17);
    let av = sorted_distinct(3_000, 1 << 20, &mut rng);
    let bv = sorted_distinct(3_000, 1 << 20, &mut rng);
    let params = FesiaParams::auto();
    let a0 = SegmentedSet::build(&av, &params).unwrap();
    let b0 = SegmentedSet::build(&bv, &params).unwrap();
    let (a, _) = SegmentedSet::deserialize(&a0.serialize()).unwrap();
    let (b, _) = SegmentedSet::deserialize(&b0.serialize()).unwrap();
    assert_eq!(
        fesia_core::intersect_count(&a, &b),
        fesia_core::intersect_count(&a0, &b0)
    );
    assert_eq!(fesia_core::intersect(&a, &b), fesia_core::intersect(&a0, &b0));
    assert_eq!(fesia_core::auto_count(&a, &b), fesia_core::auto_count(&a0, &b0));
    assert_eq!(
        fesia_core::kway_count(&[&a, &b, &a0]),
        fesia_core::kway_count(&[&a0, &b0, &a0])
    );
}
