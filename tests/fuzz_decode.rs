//! Fuzz-style robustness tests for the persistence format: arbitrary
//! corruption of a serialized [`SegmentedSet`] must never panic, never
//! read out of bounds, and never produce a structurally invalid set —
//! the decoder either returns `Err` or a set that passes `validate()`.

use fesia_core::{deserialize_many, serialize_many, FesiaParams, MappedFile, SegmentedSet};
use fesia_datagen::{sorted_distinct, SplitMix64};
use std::sync::Arc;

fn sample(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let v = sorted_distinct(n, 1 << 22, &mut rng);
    SegmentedSet::build(&v, &FesiaParams::auto())
        .unwrap()
        .serialize()
}

fn sample_many(sizes: &[usize], seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let sets: Vec<SegmentedSet> = sizes
        .iter()
        .map(|&n| {
            let v = sorted_distinct(n, 1 << 22, &mut rng);
            SegmentedSet::build(&v, &FesiaParams::auto()).unwrap()
        })
        .collect();
    serialize_many(&sets)
}

#[test]
fn single_byte_flips_never_panic() {
    let bytes = sample(400, 1);
    let mut rng = SplitMix64::new(2);
    // Exhaustive over the header, sampled over the body.
    let positions: Vec<usize> = (0..64.min(bytes.len()))
        .chain((0..400).map(|_| rng.below(bytes.len() as u64) as usize))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut m = bytes.clone();
            m[pos] ^= flip;
            match SegmentedSet::deserialize(&m) {
                Err(_) => {}
                Ok((set, used)) => {
                    assert!(
                        set.validate(),
                        "pos={pos} flip={flip:#x} decoded invalid set"
                    );
                    assert!(used <= m.len());
                }
            }
        }
    }
}

#[test]
fn truncations_never_panic() {
    let bytes = sample(300, 3);
    for cut in 0..bytes.len() {
        match SegmentedSet::deserialize(&bytes[..cut]) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "cut={cut}"),
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix64::new(7);
    for len in [0usize, 1, 4, 15, 16, 64, 500, 5_000] {
        for trial in 0..20 {
            let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            match SegmentedSet::deserialize(&buf) {
                Err(_) => {}
                Ok((set, _)) => assert!(set.validate(), "len={len} trial={trial}"),
            }
        }
    }
}

#[test]
fn garbage_with_valid_magic_never_panics() {
    let mut rng = SplitMix64::new(11);
    for trial in 0..200 {
        let len = 15 + rng.below(2_000) as usize;
        let mut buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        buf[0..4].copy_from_slice(b"FSIA");
        buf[4] = 1; // valid version
        match SegmentedSet::deserialize(&buf) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "trial={trial}"),
        }
    }
}

#[test]
fn length_field_attacks_are_contained() {
    // Declare absurd n / log2_m values and ensure bounds hold.
    let bytes = sample(100, 13);
    for (pos, val) in [
        (6usize, 40u8),
        (6, 0),
        (7, 0xFF),
        (14, 0xFF),
        (5, 12),
        (5, 0),
    ] {
        let mut m = bytes.clone();
        m[pos] = val;
        match SegmentedSet::deserialize(&m) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "pos={pos} val={val}"),
        }
    }
}

/// The 8-byte count field of a `serialize_many` buffer is attacker
/// controlled: any value — including ones that would ask
/// `Vec::with_capacity` for petabytes — must yield `Err` or a short,
/// valid prefix of sets, never a panic or an abort-sized allocation.
#[test]
fn many_header_count_attacks_are_contained() {
    let bytes = sample_many(&[200, 300], 19);
    let attacks: [u64; 9] = [
        0,
        1,
        2,
        3,
        1_000,
        u32::MAX as u64,
        u64::MAX / 15,
        u64::MAX / 2,
        u64::MAX,
    ];
    for count in attacks {
        let mut m = bytes.clone();
        m[..8].copy_from_slice(&count.to_le_bytes());
        match deserialize_many(&m) {
            Err(_) => {}
            Ok(sets) => {
                assert!(
                    sets.len() <= 2,
                    "count={count}: more sets than the buffer holds"
                );
                assert_eq!(sets.len() as u64, count, "count={count}");
                for s in &sets {
                    assert!(s.validate(), "count={count}");
                }
            }
        }
    }
}

#[test]
fn many_truncations_never_panic() {
    let bytes = sample_many(&[120, 80, 250], 23);
    // Every prefix, including cuts through the count field, the headers,
    // and mid-set bodies.
    for cut in 0..bytes.len() {
        match deserialize_many(&bytes[..cut]) {
            Err(_) => {}
            Ok(sets) => {
                for s in &sets {
                    assert!(s.validate(), "cut={cut}");
                }
            }
        }
    }
    // The untruncated buffer round-trips.
    assert_eq!(deserialize_many(&bytes).unwrap().len(), 3);
}

#[test]
fn many_byte_flips_never_panic() {
    let bytes = sample_many(&[150, 150], 29);
    let mut rng = SplitMix64::new(31);
    // Exhaustive over the count field and both per-set header regions'
    // first bytes, sampled over the rest of the concatenated buffer.
    let positions: Vec<usize> = (0..32.min(bytes.len()))
        .chain((0..600).map(|_| rng.below(bytes.len() as u64) as usize))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut m = bytes.clone();
            m[pos] ^= flip;
            match deserialize_many(&m) {
                Err(_) => {}
                Ok(sets) => {
                    for s in &sets {
                        assert!(s.validate(), "pos={pos} flip={flip:#x}");
                    }
                }
            }
        }
    }
}

#[test]
fn many_round_trips_including_empty() {
    // Zero sets, one empty set, and a mix — all must round-trip exactly.
    assert!(deserialize_many(&serialize_many::<SegmentedSet>(&[]))
        .unwrap()
        .is_empty());
    let p = FesiaParams::auto();
    let sets = vec![
        SegmentedSet::build(&[], &p).unwrap(),
        SegmentedSet::build(&[1, 2, 3], &p).unwrap(),
    ];
    let back = deserialize_many(&serialize_many(&sets)).unwrap();
    assert_eq!(back.len(), 2);
    assert_eq!(back[0].len(), 0);
    assert_eq!(back[1].len(), 3);
    assert!(back[1].contains(2));
}

/// The zero-copy decoder trusts section *content* but must reject every
/// structurally hostile header or section table without panicking or
/// reading out of bounds. Flip every byte of the v3 fixed part (header +
/// section table fill the first 128 bytes) through both decode paths.
#[test]
fn v3_section_table_flips_never_panic() {
    let mut rng = SplitMix64::new(37);
    let v = sorted_distinct(500, 1 << 22, &mut rng);
    let bytes = SegmentedSet::build(&v, &FesiaParams::auto())
        .unwrap()
        .serialize_v3();
    assert_eq!(bytes[4], 3, "sample should serialize as v3");
    for pos in 0..128.min(bytes.len()) {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut m = bytes.clone();
            m[pos] ^= flip;
            match SegmentedSet::deserialize(&m) {
                Err(_) => {}
                Ok((set, used)) => {
                    assert!(set.validate(), "owned pos={pos} flip={flip:#x}");
                    assert!(used <= m.len());
                }
            }
            // The mapped decoder trusts section *content* (a flipped
            // offset may select different-but-in-bounds bytes), so the
            // contract here is weaker than `validate()`: decode must not
            // panic and the set must be structurally usable.
            let file = Arc::new(MappedFile::from_bytes(m));
            match SegmentedSet::deserialize_mapped(&file, 0) {
                Err(_) => {}
                Ok((set, used)) => {
                    assert!(used <= file.len(), "mapped pos={pos} flip={flip:#x}");
                    let _ = set.len();
                    let _ = fesia_core::intersect_count(&set, &set);
                }
            }
        }
    }
}

/// Section-table forgeries beyond single-byte flips: offsets/lengths that
/// overlap, point past the buffer, wrap around `usize`, or shrink the
/// elements section below what the segment metadata implies.
#[test]
fn v3_hostile_section_tables_are_rejected() {
    let bytes = sample(400, 41);
    // The table lives at bytes 32..112: five (offset u64, len u64) pairs.
    let forgeries: &[(usize, u64)] = &[
        (32, u64::MAX),               // bitmap offset wraps
        (40, u64::MAX - 7),           // bitmap length wraps
        (48, 0),                      // summary offset inside the header
        (56, 1 << 40),                // summary length absurd
        (64, bytes.len() as u64),     // seg-meta offset at EOF
        (72, 8),                      // seg-meta length mismatching n
        (80, 64),                     // elements offset overlapping summary
        (88, 4),                      // elements length below n
        (96, bytes.len() as u64 * 2), // packed offset past EOF
        (104, u64::MAX / 2),          // packed length wraps
    ];
    for &(pos, val) in forgeries {
        let mut m = bytes.clone();
        m[pos..pos + 8].copy_from_slice(&val.to_le_bytes());
        match SegmentedSet::deserialize(&m) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "owned pos={pos} val={val}"),
        }
        let file = Arc::new(MappedFile::from_bytes(m));
        match SegmentedSet::deserialize_mapped(&file, 0) {
            Err(_) => {}
            // Content is trusted on this path; structural use must hold.
            Ok((set, _)) => {
                let _ = fesia_core::intersect_count(&set, &set);
            }
        }
    }
}

/// Every truncation of a v3 buffer through the mapped path, plus `at`
/// offsets pointing anywhere (aligned or not, in bounds or not).
#[test]
fn mapped_truncations_and_offsets_never_panic() {
    let bytes = sample(300, 43);
    let n = bytes.len();
    for cut in 0..n {
        let file = Arc::new(MappedFile::from_bytes(bytes[..cut].to_vec()));
        match SegmentedSet::deserialize_mapped(&file, 0) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "cut={cut}"),
        }
    }
    let file = Arc::new(MappedFile::from_bytes(bytes));
    let mut rng = SplitMix64::new(47);
    let offsets: Vec<usize> = (0..64)
        .chain((0..100).map(|_| rng.below(2 * n as u64) as usize))
        .chain([n - 1, n, n + 1, usize::MAX])
        .collect();
    for at in offsets {
        match SegmentedSet::deserialize_mapped(&file, at) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.validate(), "at={at}"),
        }
    }
}

/// Random garbage stamped with a valid v3 magic/version must never get
/// past the mapped decoder's structural checks with an invalid set.
#[test]
fn mapped_garbage_with_valid_magic_never_panics() {
    let mut rng = SplitMix64::new(53);
    for trial in 0..200 {
        let len = 15 + rng.below(4_000) as usize;
        let mut buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        buf[0..4].copy_from_slice(b"FSIA");
        buf[4] = 3;
        let file = Arc::new(MappedFile::from_bytes(buf));
        match SegmentedSet::deserialize_mapped(&file, 0) {
            Err(_) => {}
            Ok((set, _)) => {
                let _ = fesia_core::intersect_count(&set, &set);
                let _ = trial;
            }
        }
    }
}

/// The owned decoder copies into fresh allocations, so it must accept a
/// v3 buffer at any byte alignment (mapped views may legitimately refuse).
#[test]
fn misaligned_buffers_decode_on_the_owned_path() {
    let bytes = sample(250, 59);
    let (want, _) = SegmentedSet::deserialize(&bytes).unwrap();
    for shift in 1..8 {
        let mut shifted = vec![0u8; shift];
        shifted.extend_from_slice(&bytes);
        let (set, used) = SegmentedSet::deserialize(&shifted[shift..]).unwrap();
        assert_eq!(used, bytes.len(), "shift={shift}");
        assert_eq!(set.len(), want.len(), "shift={shift}");
        assert!(set.validate(), "shift={shift}");
    }
}

/// A v2 buffer decoded and re-serialized must produce a current-version
/// set that is indistinguishable in every intersection path — the
/// compressed and container tiers the re-encode gains change
/// representation, never answers.
#[test]
fn v2_reencode_preserves_behavior() {
    let mut rng = SplitMix64::new(61);
    let av = sorted_distinct(2_500, 1 << 20, &mut rng);
    let bv = sorted_distinct(2_500, 1 << 20, &mut rng);
    let params = FesiaParams::auto();
    let a0 = SegmentedSet::build(&av, &params).unwrap();
    let b0 = SegmentedSet::build(&bv, &params).unwrap();
    let (a2, _) = SegmentedSet::deserialize(&a0.serialize_v2()).unwrap();
    let v3 = a2.serialize();
    assert_eq!(v3[4], 4);
    let (a3, used) = SegmentedSet::deserialize(&v3).unwrap();
    assert_eq!(used, v3.len());
    // And through the zero-copy path of the same buffer.
    let file = Arc::new(MappedFile::from_bytes(v3));
    let (am, _) = SegmentedSet::deserialize_mapped(&file, 0).expect("mapped decode of re-encode");
    for x in [&a2, &a3, &am] {
        assert_eq!(
            fesia_core::intersect_count(x, &b0),
            fesia_core::intersect_count(&a0, &b0)
        );
        assert_eq!(
            fesia_core::intersect(x, &b0),
            fesia_core::intersect(&a0, &b0)
        );
    }
}

/// A set whose container directory mixes all three kinds: one maximal
/// run (range 0), one dense word bitmap (range 1), one sparse array
/// (range 2). Returns the set and its v4 serialization.
fn sample_v4_mixed(seed: u64) -> (SegmentedSet, Vec<u8>) {
    let mut rng = SplitMix64::new(seed);
    let mut v: Vec<u32> = (0..8_000).collect();
    v.extend(
        sorted_distinct(20_000, 1 << 16, &mut rng)
            .iter()
            .map(|x| (1 << 16) + x),
    );
    v.extend(
        sorted_distinct(800, 1 << 16, &mut rng)
            .iter()
            .map(|x| (2 << 16) + x),
    );
    let set = SegmentedSet::build(&v, &FesiaParams::auto()).unwrap();
    let stats = set.container_stats().expect("mixed sample builds a tier");
    assert!(
        stats.ranges_array >= 1 && stats.ranges_bitmap >= 1 && stats.ranges_run >= 1,
        "sample should exercise all three container kinds: {stats:?}"
    );
    let bytes = set.serialize();
    assert_eq!(bytes[4], 4, "container-carrying sets serialize as v4");
    assert_ne!(bytes[7] & 4, 0, "FLAG_CONTAINER must be set");
    (set, bytes)
}

/// Decode `m` through both paths and require the usual contracts: owned
/// decode yields `Err` or a `validate()`-clean set; mapped decode never
/// panics and — because the v4 container sections are fully validated —
/// any surviving set is safe to drive through an intersection.
fn both_paths_contained(m: Vec<u8>, ctx: &str) {
    match SegmentedSet::deserialize(&m) {
        Err(_) => {}
        Ok((set, used)) => {
            assert!(set.validate(), "owned {ctx}");
            assert!(used <= m.len(), "owned {ctx}");
        }
    }
    let file = Arc::new(MappedFile::from_bytes(m));
    match SegmentedSet::deserialize_mapped(&file, 0) {
        Err(_) => {}
        Ok((set, used)) => {
            assert!(used <= file.len(), "mapped {ctx}");
            let _ = fesia_core::intersect_count(&set, &set);
        }
    }
}

/// Flip every byte of the v4 fixed part (header + 9-entry section table
/// fill the first 192 bytes) and a sample of the container payload bytes,
/// through both decode paths.
#[test]
fn v4_header_and_section_flips_never_panic() {
    let (_, bytes) = sample_v4_mixed(67);
    let mut rng = SplitMix64::new(71);
    let positions: Vec<usize> = (0..192.min(bytes.len()))
        .chain((0..200).map(|_| rng.below(bytes.len() as u64) as usize))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut m = bytes.clone();
            m[pos] ^= flip;
            both_paths_contained(m, &format!("pos={pos} flip={flip:#x}"));
        }
    }
}

/// Section-table forgeries specific to the four v4 container sections
/// (table entries 5–8 live at bytes 112..176): misaligned word-bitmap
/// lengths, truncated run lists, flag/section disagreements, and a
/// directory claiming more ranges than the key space holds.
#[test]
fn v4_hostile_container_tables_are_rejected() {
    let (_, bytes) = sample_v4_mixed(73);
    let u64_at = |b: &[u8], at: usize| u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
    let forgeries: &[(usize, u64, &str)] = &[
        (120, 0, "dlen zero with FLAG_CONTAINER set"),
        (120, 8, "dlen not a whole directory entry"),
        (120, (1u64 << 16) * 16 + 16, "dlen beyond one range per key"),
        (136, u64_at(&bytes, 136) | 1, "vlen not whole u16 values"),
        (152, u64_at(&bytes, 152) - 8, "wlen not whole 8 KiB blocks"),
        (168, u64_at(&bytes, 168) - 4, "rlen truncated by one run"),
        (168, u64_at(&bytes, 168) + 2, "rlen not whole u32 runs"),
        (
            112,
            u64_at(&bytes, 112) + 64,
            "dir offset shifted into values",
        ),
    ];
    for &(pos, val, what) in forgeries {
        let mut m = bytes.clone();
        m[pos..pos + 8].copy_from_slice(&val.to_le_bytes());
        // Structural rejection is required on the mapped path: either the
        // header check or the tier validation must refuse the forgery.
        let file = Arc::new(MappedFile::from_bytes(m.clone()));
        match SegmentedSet::deserialize_mapped(&file, 0) {
            Err(_) => {}
            Ok((set, _)) => assert!(set.container().is_none(), "mapped accepted: {what}"),
        }
        both_paths_contained(m, what);
    }
    // FLAG_CONTAINER cleared while the sections stay non-empty.
    let mut m = bytes.clone();
    m[7] &= !4;
    assert!(
        SegmentedSet::deserialize(&m).is_err(),
        "flag/section disagreement"
    );
    let file = Arc::new(MappedFile::from_bytes(m));
    assert!(SegmentedSet::deserialize_mapped(&file, 0).is_err());
}

/// Hostile directory *content* (the mapped path's trust boundary):
/// unknown kind tags, reserved bits, out-of-order keys, zero and absurd
/// cardinalities, payload offsets off their prefix sums. The mapped
/// decoder must reject every one; the owned decoder ignores stored tier
/// bytes entirely (it rebuilds from elements) so it must stay clean.
#[test]
fn v4_hostile_directory_entries_are_rejected() {
    let (_, bytes) = sample_v4_mixed(79);
    let doff = u64::from_le_bytes(bytes[112..120].try_into().unwrap()) as usize;
    let dlen = u64::from_le_bytes(bytes[120..128].try_into().unwrap()) as usize;
    assert!(
        dlen >= 3 * 16,
        "sample has at least three directory entries"
    );
    let entry_w0 = |b: &[u8], i: usize| {
        u64::from_le_bytes(b[doff + 16 * i..doff + 16 * i + 8].try_into().unwrap())
    };
    let mut forgeries: Vec<(Vec<u8>, &str)> = Vec::new();
    // Unknown kind tag (3) and reserved directory bits.
    for (shift, what) in [(16u32, "unknown kind tag"), (24, "reserved bits set")] {
        let mut m = bytes.clone();
        let w0 = entry_w0(&m, 0) | 3 << shift;
        m[doff..doff + 8].copy_from_slice(&w0.to_le_bytes());
        forgeries.push((m, what));
    }
    // Swap the first two entries: keys fall out of order and the payload
    // prefix sums break.
    let mut m = bytes.clone();
    let (a, b): (Vec<u8>, Vec<u8>) = (
        m[doff..doff + 16].to_vec(),
        m[doff + 16..doff + 32].to_vec(),
    );
    m[doff..doff + 16].copy_from_slice(&b);
    m[doff + 16..doff + 32].copy_from_slice(&a);
    forgeries.push((m, "out-of-order keys"));
    // Zero and over-range cardinality on the first entry.
    for (card, what) in [
        (0u64, "zero cardinality"),
        (1 << 17, "cardinality beyond range"),
    ] {
        let mut m = bytes.clone();
        let w0 = (entry_w0(&m, 0) & 0xFFFF_FFFF) | card << 32;
        m[doff..doff + 8].copy_from_slice(&w0.to_le_bytes());
        forgeries.push((m, what));
    }
    // Payload offset bumped off its prefix sum.
    let mut m = bytes.clone();
    let w1 = u64::from_le_bytes(m[doff + 8..doff + 16].try_into().unwrap()) + 1;
    m[doff + 8..doff + 16].copy_from_slice(&w1.to_le_bytes());
    forgeries.push((m, "payload offset off prefix sum"));
    for (m, what) in forgeries {
        let file = Arc::new(MappedFile::from_bytes(m.clone()));
        assert!(
            SegmentedSet::deserialize_mapped(&file, 0).is_err(),
            "mapped accepted: {what}"
        );
        let (set, _) = SegmentedSet::deserialize(&m).expect("owned rebuilds from elements");
        assert!(set.validate(), "owned {what}");
    }
}

/// Every truncation of a v4 buffer through both paths, plus byte-flips
/// over the container payload region specifically (bitmap words with
/// wrong popcounts, unsorted array values, overlapping runs must all be
/// caught by the tier validation, not trusted).
#[test]
fn v4_truncations_and_payload_flips_never_panic() {
    let (_, bytes) = sample_v4_mixed(83);
    let mut rng = SplitMix64::new(89);
    let cuts: Vec<usize> = (0..256)
        .chain((0..120).map(|_| rng.below(bytes.len() as u64) as usize))
        .collect();
    for cut in cuts {
        both_paths_contained(
            bytes[..cut.min(bytes.len())].to_vec(),
            &format!("cut={cut}"),
        );
    }
    // The container payload spans from the directory section to EOF.
    let doff = u64::from_le_bytes(bytes[112..120].try_into().unwrap()) as usize;
    for _ in 0..200 {
        let pos = doff + rng.below((bytes.len() - doff) as u64) as usize;
        let mut m = bytes.clone();
        m[pos] ^= 1 << rng.below(8);
        both_paths_contained(m, &format!("payload pos={pos}"));
    }
}

/// A v3 buffer of a container-worthy set decoded and re-serialized must
/// come back as v4 with a rebuilt container tier, and stay
/// indistinguishable in every intersection path — on both the owned and
/// the zero-copy decoder.
#[test]
fn v3_to_v4_reencode_preserves_behavior() {
    let (a0, _) = sample_v4_mixed(97);
    let mut rng = SplitMix64::new(101);
    let bv = sorted_distinct(3_000, 3 << 16, &mut rng);
    let b0 = SegmentedSet::build(&bv, &FesiaParams::auto()).unwrap();
    let v3 = a0.serialize_v3();
    assert_eq!(v3[4], 3);
    // Owned v3 decode rebuilds the tier from elements...
    let (a3, _) = SegmentedSet::deserialize(&v3).unwrap();
    assert_eq!(a3.container_stats(), a0.container_stats());
    // ...while the mapped v3 path has no container sections to view.
    let v3file = Arc::new(MappedFile::from_bytes(v3));
    let (a3m, _) = SegmentedSet::deserialize_mapped(&v3file, 0).unwrap();
    assert!(a3m.container().is_none());
    // Re-encoding the decoded set produces v4 and round-trips the tier
    // bit for bit through the zero-copy path.
    let v4 = a3.serialize();
    assert_eq!(v4[4], 4);
    let (a4, used) = SegmentedSet::deserialize(&v4).unwrap();
    assert_eq!(used, v4.len());
    let v4file = Arc::new(MappedFile::from_bytes(v4));
    let (a4m, _) = SegmentedSet::deserialize_mapped(&v4file, 0).unwrap();
    assert_eq!(a4m.container_stats(), a0.container_stats());
    for x in [&a3, &a3m, &a4, &a4m] {
        assert_eq!(
            fesia_core::intersect_count(x, &b0),
            fesia_core::intersect_count(&a0, &b0)
        );
        assert_eq!(
            fesia_core::intersect(x, &b0),
            fesia_core::intersect(&a0, &b0)
        );
    }
}

#[test]
fn decoded_sets_behave_identically_to_originals() {
    // Round-trip then use in every algorithm — end-to-end sanity that the
    // decoder's output is a first-class set.
    let mut rng = SplitMix64::new(17);
    let av = sorted_distinct(3_000, 1 << 20, &mut rng);
    let bv = sorted_distinct(3_000, 1 << 20, &mut rng);
    let params = FesiaParams::auto();
    let a0 = SegmentedSet::build(&av, &params).unwrap();
    let b0 = SegmentedSet::build(&bv, &params).unwrap();
    let (a, _) = SegmentedSet::deserialize(&a0.serialize()).unwrap();
    let (b, _) = SegmentedSet::deserialize(&b0.serialize()).unwrap();
    assert_eq!(
        fesia_core::intersect_count(&a, &b),
        fesia_core::intersect_count(&a0, &b0)
    );
    assert_eq!(
        fesia_core::intersect(&a, &b),
        fesia_core::intersect(&a0, &b0)
    );
    assert_eq!(
        fesia_core::auto_count(&a, &b),
        fesia_core::auto_count(&a0, &b0)
    );
    assert_eq!(
        fesia_core::kway_count(&[&a, &b, &a0]),
        fesia_core::kway_count(&[&a0, &b0, &a0])
    );
}
