//! Set-algebra equivalence: every materializing operation, on every
//! backend shape, is element-identical to the sorted-merge oracles in
//! `fesia_baselines::merge`.
//!
//! The visitor-based executor ([`fesia_core::set_op`]) shares one body per
//! operation across every plan the [`fesia_core::IntersectPlanner`] can
//! pick, so forcing each strategy in turn must reproduce the oracle's
//! exact output (not just its length) on randomized overlap, heavy skew,
//! disjoint ranges, identical sets, and empty operands — including folded
//! pairs (mismatched bitmap sizes) and packed-tier sets. Inputs come from
//! a seeded [`SplitMix64`] stream, so a failure names the seed that
//! replays it.

use fesia_baselines::merge;
use fesia_core::{ContainerParams, FesiaParams, PlanMode, SegmentedSet, SetOp};
use fesia_datagen::{clustered_pair, run_heavy_pair, SplitMix64};
use std::sync::Mutex;

/// `set_plan_mode` is process-global; tests that flip it serialize here.
static MODE_LOCK: Mutex<()> = Mutex::new(());

const OPS: [SetOp; 4] = [
    SetOp::Intersect,
    SetOp::Union,
    SetOp::Difference,
    SetOp::Xor,
];

fn sorted_set(rng: &mut SplitMix64, max_len: usize, universe: u32) -> Vec<u32> {
    let n = rng.below(max_len as u64 + 1) as usize;
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        set.insert(rng.below(universe as u64) as u32);
    }
    set.into_iter().collect()
}

fn oracle(op: SetOp, a: &[u32], b: &[u32]) -> Vec<u32> {
    match op {
        SetOp::Intersect => merge::intersect(a, b),
        SetOp::Union => merge::union(a, b),
        SetOp::Difference => merge::difference(a, b),
        SetOp::Xor => merge::xor(a, b),
    }
}

/// The adversarial input shapes: (label, a, b).
fn case_shapes(seed: u64) -> Vec<(&'static str, Vec<u32>, Vec<u32>)> {
    let mut rng = SplitMix64::new(0xA16E ^ (seed << 8));
    let random_a = sorted_set(&mut rng, 4_000, 60_000);
    let random_b = sorted_set(&mut rng, 4_000, 60_000);
    let skew_small = sorted_set(&mut rng, 64, 1 << 20);
    let skew_large = sorted_set(&mut rng, 20_000, 1 << 20);
    let identical = sorted_set(&mut rng, 2_000, 100_000);
    let disjoint_a: Vec<u32> = (0..1_500).map(|i| i * 2).collect();
    let disjoint_b: Vec<u32> = (0..1_500).map(|i| i * 2 + 1).collect();
    vec![
        ("random", random_a, random_b),
        ("skewed", skew_small, skew_large),
        ("identical", identical.clone(), identical),
        ("disjoint", disjoint_a, disjoint_b),
        (
            "empty-left",
            Vec::new(),
            sorted_set(&mut rng, 3_000, 50_000),
        ),
        ("empty-both", Vec::new(), Vec::new()),
    ]
}

#[test]
fn materialized_intersection_length_matches_count() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fesia_core::set_plan_mode(PlanMode::Auto);
    let params = FesiaParams::auto();
    for seed in 0..8u64 {
        for (label, av, bv) in case_shapes(seed) {
            let a = SegmentedSet::build(&av, &params).unwrap();
            let b = SegmentedSet::build(&bv, &params).unwrap();
            assert_eq!(
                fesia_core::intersect(&a, &b).len(),
                fesia_core::intersect_count(&a, &b),
                "seed={seed} case={label}"
            );
        }
    }
}

#[test]
fn every_op_matches_the_merge_oracle_under_every_forced_plan() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let params = FesiaParams::auto();
    for seed in 0..8u64 {
        for (label, av, bv) in case_shapes(seed) {
            let a = SegmentedSet::build(&av, &params).unwrap();
            let b = SegmentedSet::build(&bv, &params).unwrap();
            for op in OPS {
                let want = oracle(op, &av, &bv);
                fesia_core::set_plan_mode(PlanMode::Auto);
                assert_eq!(
                    fesia_core::set_op(&a, &b, op),
                    want,
                    "seed={seed} case={label} op={} mode=auto",
                    op.name()
                );
                assert_eq!(
                    fesia_core::set_op_count(&a, &b, op),
                    want.len(),
                    "seed={seed} case={label} op={} count",
                    op.name()
                );
                for mode in PlanMode::FORCED {
                    fesia_core::set_plan_mode(mode);
                    assert_eq!(
                        fesia_core::set_op(&a, &b, op),
                        want,
                        "seed={seed} case={label} op={} mode={}",
                        op.name(),
                        mode.name()
                    );
                }
            }
        }
    }
    fesia_core::set_plan_mode(PlanMode::Auto);
}

#[test]
fn folded_pairs_with_mismatched_bitmaps_agree() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fesia_core::set_plan_mode(PlanMode::Auto);
    let params = FesiaParams::auto();
    // A denser bitmap for the same data forces `bitmap_bits` apart even at
    // comparable lengths; length skew alone also folds (bits scale with n).
    let dense = params.with_bits_per_element(params.bits_per_element * 4.0);
    for seed in 0..6u64 {
        let mut rng = SplitMix64::new(0xF01D ^ seed);
        // Keep both sides well above the bitmap-size floor so the 4×
        // density gap is guaranteed to produce different bitmap sizes.
        let mut av = sorted_set(&mut rng, 2_000, 200_000);
        let mut bv = sorted_set(&mut rng, 2_000, 200_000);
        while av.len() < 1_000 {
            av = sorted_set(&mut rng, 2_000, 200_000);
        }
        while bv.len() < 1_000 {
            bv = sorted_set(&mut rng, 2_000, 200_000);
        }
        let a = SegmentedSet::build(&av, &params).unwrap();
        let b = SegmentedSet::build(&bv, &dense).unwrap();
        assert_ne!(
            a.bitmap_bits(),
            b.bitmap_bits(),
            "seed={seed}: the case must actually fold"
        );
        for op in OPS {
            assert_eq!(
                fesia_core::set_op(&a, &b, op),
                oracle(op, &av, &bv),
                "seed={seed} op={} folded",
                op.name()
            );
            // Folding is asymmetric inside the executor (large drives the
            // sweep), so both argument orders must hold.
            assert_eq!(
                fesia_core::set_op(&b, &a, op),
                oracle(op, &bv, &av),
                "seed={seed} op={} folded (swapped)",
                op.name()
            );
        }
    }
}

/// Container-carrying pairs through every materializing op: the word-AND
/// / word-OR range kernels are exact in the value domain, so forcing the
/// container knob on, off, or leaving it auto must all reproduce the
/// merge oracle element for element.
#[test]
fn container_sets_agree_with_the_oracle() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let params = FesiaParams::auto();
    let mut rng = SplitMix64::new(0xC0DE);
    let (rh_a, rh_b) = run_heavy_pair(40_000, 10_000, 64, &mut rng);
    let (cl_a, cl_b) = clustered_pair(40_000, 10_000, 3, 0.85, &mut rng);
    let saved = fesia_core::container_params();
    fesia_core::set_plan_mode(PlanMode::Auto);
    for (label, av, bv) in [("run-heavy", rh_a, rh_b), ("clustered", cl_a, cl_b)] {
        let a = SegmentedSet::build(&av, &params).unwrap();
        let b = SegmentedSet::build(&bv, &params).unwrap();
        assert!(
            a.container().is_some() && b.container().is_some(),
            "case={label}: both sides must carry a directory"
        );
        for op in OPS {
            let want = oracle(op, &av, &bv);
            for forced in [None, Some(true), Some(false)] {
                fesia_core::set_container_params(ContainerParams::default().with_forced(forced));
                assert_eq!(
                    fesia_core::set_op(&a, &b, op),
                    want,
                    "case={label} op={} container={forced:?}",
                    op.name()
                );
                assert_eq!(
                    fesia_core::set_op_count(&a, &b, op),
                    want.len(),
                    "case={label} op={} container={forced:?} count",
                    op.name()
                );
            }
        }
    }
    fesia_core::set_container_params(saved);
}

/// A folded pair (mismatched bitmap sizes) where both sides also carry
/// container directories. The container path never consults the hashed
/// bitmap, so folding is moot for it — but the dispatch seam between
/// folded execution and the directory walk must agree with the oracle in
/// both argument orders and with the knob at every setting.
#[test]
fn folded_container_pairs_agree_with_the_oracle() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let params = FesiaParams::auto();
    let dense = params.with_bits_per_element(params.bits_per_element * 4.0);
    let mut rng = SplitMix64::new(0xF01DC);
    let (av, bv) = run_heavy_pair(30_000, 8_000, 48, &mut rng);
    let a = SegmentedSet::build(&av, &params).unwrap();
    let b = SegmentedSet::build(&bv, &dense).unwrap();
    assert_ne!(
        a.bitmap_bits(),
        b.bitmap_bits(),
        "the case must actually fold"
    );
    assert!(
        a.container().is_some() && b.container().is_some(),
        "both sides must carry a directory"
    );
    let saved = fesia_core::container_params();
    fesia_core::set_plan_mode(PlanMode::Auto);
    for op in OPS {
        for forced in [None, Some(true), Some(false)] {
            fesia_core::set_container_params(ContainerParams::default().with_forced(forced));
            assert_eq!(
                fesia_core::set_op(&a, &b, op),
                oracle(op, &av, &bv),
                "op={} container={forced:?} folded",
                op.name()
            );
            assert_eq!(
                fesia_core::set_op(&b, &a, op),
                oracle(op, &bv, &av),
                "op={} container={forced:?} folded (swapped)",
                op.name()
            );
        }
    }
    fesia_core::set_container_params(saved);
}

#[test]
fn packed_tier_sets_agree_with_the_oracle() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let params = FesiaParams::auto();
    let mut rng = SplitMix64::new(0x9ACC);
    for round in 0..4u64 {
        // Large enough to clear the packed-tier admission gates.
        let av = sorted_set(&mut rng, 12_000, 1 << 18);
        let bv = sorted_set(&mut rng, 12_000, 1 << 18);
        let a = SegmentedSet::build(&av, &params).unwrap();
        let b = SegmentedSet::build(&bv, &params).unwrap();
        assert!(
            a.packed().is_some() && b.packed().is_some(),
            "round={round}: inputs must carry a compressed tier"
        );
        for op in OPS {
            let want = oracle(op, &av, &bv);
            fesia_core::set_plan_mode(PlanMode::Auto);
            assert_eq!(
                fesia_core::set_op(&a, &b, op),
                want,
                "round={round} op={} packed auto",
                op.name()
            );
            for mode in PlanMode::FORCED {
                fesia_core::set_plan_mode(mode);
                assert_eq!(
                    fesia_core::set_op(&a, &b, op),
                    want,
                    "round={round} op={} packed mode={}",
                    op.name(),
                    mode.name()
                );
            }
        }
    }
    fesia_core::set_plan_mode(PlanMode::Auto);
}
