//! Compressed-tier equivalence: `FESIA_COMPRESS=on|off|auto` (the runtime
//! knob [`fesia_core::set_compress_params`]) only chooses *which step-2
//! form* runs — never the answer. Every knob setting must reproduce the
//! reference count on every input shape, including sets too small to
//! carry a packed tier (where forcing compression must silently fall
//! back) and large sparse pairs where the tier genuinely engages.

use fesia_core::{CompressParams, FesiaParams, KernelTable, SegmentedSet, SetSummary};
use fesia_datagen::{sorted_distinct, SplitMix64};
use std::sync::Mutex;

/// `set_compress_params` is process-global; tests that flip it serialize
/// here (mirrors `plan_equivalence::MODE_LOCK`).
static MODE_LOCK: Mutex<()> = Mutex::new(());

const KNOBS: [Option<bool>; 3] = [None, Some(true), Some(false)];

fn knob_name(k: Option<bool>) -> &'static str {
    match k {
        None => "auto",
        Some(true) => "on",
        Some(false) => "off",
    }
}

fn sorted_set(rng: &mut SplitMix64, max_len: usize, universe: u32) -> Vec<u32> {
    let n = rng.below(max_len as u64 + 1) as usize;
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        set.insert(rng.below(universe as u64) as u32);
    }
    set.into_iter().collect()
}

fn reference_count(a: &[u32], b: &[u32]) -> usize {
    let bs: std::collections::HashSet<u32> = b.iter().copied().collect();
    a.iter().filter(|x| bs.contains(x)).count()
}

/// The adversarial input shapes: (label, a, b).
fn case_shapes(seed: u64) -> Vec<(&'static str, Vec<u32>, Vec<u32>)> {
    let mut rng = SplitMix64::new(0xC0DE ^ (seed << 8));
    let random_a = sorted_set(&mut rng, 4_000, 60_000);
    let random_b = sorted_set(&mut rng, 4_000, 60_000);
    let skew_small = sorted_set(&mut rng, 64, 1 << 20);
    let skew_large = sorted_set(&mut rng, 20_000, 1 << 20);
    let identical = sorted_set(&mut rng, 2_000, 100_000);
    let disjoint_a: Vec<u32> = (0..1_500).map(|i| i * 2).collect();
    let disjoint_b: Vec<u32> = (0..1_500).map(|i| i * 2 + 1).collect();
    vec![
        ("random", random_a, random_b),
        ("skewed", skew_small, skew_large),
        ("identical", identical.clone(), identical),
        ("disjoint", disjoint_a, disjoint_b),
        (
            "empty-left",
            Vec::new(),
            sorted_set(&mut rng, 3_000, 50_000),
        ),
        ("empty-both", Vec::new(), Vec::new()),
    ]
}

/// Run `f` with the compress knob forced to each setting in turn,
/// restoring the saved params afterwards even on panic-free exit.
fn with_knob<F: FnMut(Option<bool>)>(mut f: F) {
    let saved = fesia_core::compress_params();
    for knob in KNOBS {
        fesia_core::set_compress_params(CompressParams::default().with_forced(knob));
        f(knob);
    }
    fesia_core::set_compress_params(saved);
}

#[test]
fn every_compress_knob_matches_reference_counts() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let table = KernelTable::auto();
    let params = FesiaParams::auto();
    for seed in 0..10u64 {
        for (label, av, bv) in case_shapes(seed) {
            let a = SegmentedSet::build(&av, &params).unwrap();
            let b = SegmentedSet::build(&bv, &params).unwrap();
            let want = reference_count(&av, &bv);
            with_knob(|knob| {
                assert_eq!(
                    fesia_core::intersect_count_with(&a, &b, &table),
                    want,
                    "seed={seed} case={label} compress={}",
                    knob_name(knob)
                );
                assert_eq!(
                    fesia_core::auto_count_with(&a, &b, &table),
                    want,
                    "seed={seed} case={label} compress={} (auto entry)",
                    knob_name(knob)
                );
            });
        }
    }
}

/// Large sparse pairs where the packed tier actually engages under
/// `auto` and `on`: the compressed sweep must agree with `off` exactly,
/// and with materialization ([`fesia_core::intersect`]) too.
#[test]
fn engaged_tier_agrees_with_uncompressed_on_large_sparse_pairs() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let table = KernelTable::auto();
    let params = FesiaParams::auto();
    let mut rng = SplitMix64::new(0x5EED);
    for trial in 0..3 {
        let n = 1 << 19;
        let av = sorted_distinct(n, 1 << 26, &mut rng);
        let bv = sorted_distinct(n, 1 << 26, &mut rng);
        let a = SegmentedSet::build(&av, &params).unwrap();
        let b = SegmentedSet::build(&bv, &params).unwrap();
        assert!(
            a.packed().is_some() && b.packed().is_some(),
            "trial={trial}: default geometry should pack at this size"
        );
        // The auto heuristic must engage for this shape — otherwise the
        // "on == auto" leg below would not exercise the compressed sweep.
        assert!(fesia_core::should_compress_summaries(
            &SetSummary::of(&a),
            &SetSummary::of(&b),
            &CompressParams::default(),
        ));
        let want = reference_count(&av, &bv);
        with_knob(|knob| {
            assert_eq!(
                fesia_core::intersect_count_with(&a, &b, &table),
                want,
                "trial={trial} compress={}",
                knob_name(knob)
            );
        });
        // Materialization is independent of the counting tier but must
        // agree with it.
        assert_eq!(fesia_core::intersect(&a, &b).len(), want, "trial={trial}");
    }
}

/// Serialization round-trips (owned and zero-copy mapped) preserve the
/// packed tier, and decoded sets answer identically under every knob.
#[test]
fn roundtripped_sets_agree_under_every_knob() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let table = KernelTable::auto();
    let params = FesiaParams::auto();
    let mut rng = SplitMix64::new(0xBEEF);
    let av = sorted_distinct(1 << 18, 1 << 25, &mut rng);
    let bv = sorted_distinct(1 << 18, 1 << 25, &mut rng);
    let a0 = SegmentedSet::build(&av, &params).unwrap();
    let b0 = SegmentedSet::build(&bv, &params).unwrap();
    let want = reference_count(&av, &bv);

    let (a1, _) = SegmentedSet::deserialize(&a0.serialize()).unwrap();
    let file = std::sync::Arc::new(fesia_core::MappedFile::from_bytes(b0.serialize()));
    let (b1, _) = SegmentedSet::deserialize_mapped(&file, 0).expect("aligned in-memory mapping");
    assert_eq!(a1.packed().is_some(), a0.packed().is_some());
    assert_eq!(b1.packed().is_some(), b0.packed().is_some());

    with_knob(|knob| {
        assert_eq!(
            fesia_core::intersect_count_with(&a1, &b1, &table),
            want,
            "decoded pair, compress={}",
            knob_name(knob)
        );
    });
}
