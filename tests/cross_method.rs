//! Cross-crate integration: every intersection method in the workspace —
//! all baselines and every FESIA configuration — must agree on every
//! workload regime of the paper's evaluation grid.

use fesia_baselines::Method;
use fesia_core::{FesiaParams, KernelTable, SegmentedSet, SimdLevel};
use fesia_datagen::{
    ksets_with_density, ksets_with_intersection, pair_with_intersection, reference_count,
    skewed_pair, SplitMix64,
};

/// The workload grid: (n1, n2, r) triples spanning the paper's axes.
fn workload_grid() -> Vec<(usize, usize, usize)> {
    vec![
        (0, 0, 0),
        (1, 1, 1),
        (1, 1, 0),
        (100, 100, 0),         // selectivity 0
        (1_000, 1_000, 10),    // selectivity 1%
        (1_000, 1_000, 500),   // selectivity 50%
        (1_000, 1_000, 1_000), // identical sets
        (1_000, 32_000, 100),  // skew 1/32
        (7, 50_000, 3),        // extreme skew
        (10_000, 10_000, 100), // paper's headline regime
    ]
}

#[test]
fn all_baselines_agree_on_the_grid() {
    let mut rng = SplitMix64::new(0xA11);
    for (n1, n2, r) in workload_grid() {
        let (a, b) = pair_with_intersection(n1, n2, r, &mut rng);
        assert_eq!(reference_count(&a, &b), r);
        for m in Method::all() {
            assert_eq!(m.count(&a, &b), r, "{} on ({n1},{n2},{r})", m.name());
            assert_eq!(
                m.count(&b, &a),
                r,
                "{} swapped on ({n1},{n2},{r})",
                m.name()
            );
        }
    }
}

#[test]
fn fesia_agrees_on_the_grid_at_every_level_and_stride() {
    let mut rng = SplitMix64::new(0xF35);
    for (n1, n2, r) in workload_grid() {
        let (av, bv) = pair_with_intersection(n1, n2, r, &mut rng);
        for level in SimdLevel::available_levels() {
            let params = FesiaParams::for_level(level);
            let a = SegmentedSet::build(&av, &params).unwrap();
            let b = SegmentedSet::build(&bv, &params).unwrap();
            for stride in [1usize, 4] {
                let table = KernelTable::new(level, stride);
                assert_eq!(
                    fesia_core::intersect_count_with(&a, &b, &table),
                    r,
                    "FESIA level={level} stride={stride} on ({n1},{n2},{r})"
                );
            }
            assert_eq!(fesia_core::auto_count(&a, &b), r, "auto level={level}");
            assert_eq!(
                fesia_core::hash_probe_count(&av, &b),
                r,
                "hash-probe level={level}"
            );
            assert_eq!(
                fesia_core::par_intersect_count(&a, &b, 4),
                r,
                "parallel level={level}"
            );
            let materialized = fesia_core::intersect(&a, &b);
            assert_eq!(materialized.len(), r, "materialize level={level}");
            assert!(materialized.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

#[test]
fn density_workloads_agree() {
    let mut rng = SplitMix64::new(0xD37);
    let params = FesiaParams::auto();
    for density in [0.0, 0.01, 0.1, 0.5, 0.9] {
        let sets = ksets_with_density(2, 4_000, density, &mut rng);
        let want = reference_count(&sets[0], &sets[1]);
        for m in Method::all() {
            assert_eq!(
                m.count(&sets[0], &sets[1]),
                want,
                "{} d={density}",
                m.name()
            );
        }
        let a = SegmentedSet::build(&sets[0], &params).unwrap();
        let b = SegmentedSet::build(&sets[1], &params).unwrap();
        assert_eq!(
            fesia_core::intersect_count(&a, &b),
            want,
            "FESIA d={density}"
        );
    }
}

#[test]
fn kway_agreement_across_arities_and_methods() {
    let mut rng = SplitMix64::new(0x3A7);
    let params = FesiaParams::auto();
    for k in [2usize, 3, 4, 6] {
        let sizes: Vec<usize> = (0..k).map(|i| 2_000 + i * 500).collect();
        let lists = ksets_with_intersection(&sizes, 37, &mut rng);
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        // Private pools are globally distinct, so the k-way answer is 37.
        for m in Method::all() {
            assert_eq!(m.kway_count(&refs), 37, "{} k={k}", m.name());
        }
        let sets: Vec<SegmentedSet> = lists
            .iter()
            .map(|l| SegmentedSet::build(l, &params).unwrap())
            .collect();
        let set_refs: Vec<&SegmentedSet> = sets.iter().collect();
        assert_eq!(fesia_core::kway_count(&set_refs), 37, "FESIA k={k}");
    }
}

#[test]
fn skew_sweep_strategies_agree() {
    let params = FesiaParams::auto();
    let n2 = 32_768;
    for shift in 0..=5 {
        let n1 = n2 >> shift;
        let mut rng = SplitMix64::new(100 + shift as u64);
        let (small, large) = skewed_pair(n1, n2, 0.1, &mut rng);
        let want = reference_count(&small, &large);
        let a = SegmentedSet::build(&small, &params).unwrap();
        let b = SegmentedSet::build(&large, &params).unwrap();
        assert_eq!(
            fesia_core::intersect_count(&a, &b),
            want,
            "merge skew 1/{}",
            1 << shift
        );
        assert_eq!(
            fesia_core::hash_probe_count(&small, &b),
            want,
            "hash skew 1/{}",
            1 << shift
        );
        assert_eq!(
            fesia_core::auto_count(&a, &b),
            want,
            "auto skew 1/{}",
            1 << shift
        );
        for m in Method::all() {
            assert_eq!(
                m.count(&small, &large),
                want,
                "{} skew 1/{}",
                m.name(),
                1 << shift
            );
        }
    }
}

#[test]
fn u16_segments_agree_with_u8() {
    use fesia_core::LaneWidth;
    let mut rng = SplitMix64::new(0x16);
    let (av, bv) = pair_with_intersection(8_000, 8_000, 80, &mut rng);
    for lane in [LaneWidth::U8, LaneWidth::U16] {
        let params = FesiaParams::auto().with_segment(lane);
        let a = SegmentedSet::build(&av, &params).unwrap();
        let b = SegmentedSet::build(&bv, &params).unwrap();
        assert_eq!(fesia_core::intersect_count(&a, &b), 80, "lane={lane:?}");
    }
}
