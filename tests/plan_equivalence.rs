//! Planner equivalence: every forced `FESIA_PLAN` strategy returns the
//! same count as `auto`.
//!
//! The [`fesia_core::IntersectPlanner`] only chooses *how* a pair is
//! intersected — never *what* the answer is — so forcing each strategy in
//! turn (the runtime equivalent of `FESIA_PLAN=plain|pipelined|pruned|
//! hash|gallop`) must reproduce the auto-mode count on every input shape:
//! randomized overlap, heavy skew, disjoint ranges, identical sets, and
//! empty operands. Inputs come from a seeded [`SplitMix64`] stream, so a
//! failure names the seed that replays it.

use fesia_core::{ContainerParams, FesiaParams, KernelTable, PlanMode, SegmentedSet};
use fesia_datagen::{clustered_pair, run_heavy_pair, SplitMix64};
use std::sync::Mutex;

/// `set_plan_mode` is process-global; tests that flip it serialize here.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn sorted_set(rng: &mut SplitMix64, max_len: usize, universe: u32) -> Vec<u32> {
    let n = rng.below(max_len as u64 + 1) as usize;
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        set.insert(rng.below(universe as u64) as u32);
    }
    set.into_iter().collect()
}

fn reference_count(a: &[u32], b: &[u32]) -> usize {
    let bs: std::collections::HashSet<u32> = b.iter().copied().collect();
    a.iter().filter(|x| bs.contains(x)).count()
}

/// The adversarial input shapes: (label, a, b).
fn case_shapes(seed: u64) -> Vec<(&'static str, Vec<u32>, Vec<u32>)> {
    let mut rng = SplitMix64::new(0x71A9 ^ (seed << 8));
    let random_a = sorted_set(&mut rng, 4_000, 60_000);
    let random_b = sorted_set(&mut rng, 4_000, 60_000);
    let skew_small = sorted_set(&mut rng, 64, 1 << 20);
    let skew_large = sorted_set(&mut rng, 20_000, 1 << 20);
    let identical = sorted_set(&mut rng, 2_000, 100_000);
    let disjoint_a: Vec<u32> = (0..1_500).map(|i| i * 2).collect();
    let disjoint_b: Vec<u32> = (0..1_500).map(|i| i * 2 + 1).collect();
    vec![
        ("random", random_a, random_b),
        ("skewed", skew_small, skew_large),
        ("identical", identical.clone(), identical),
        ("disjoint", disjoint_a, disjoint_b),
        (
            "empty-left",
            Vec::new(),
            sorted_set(&mut rng, 3_000, 50_000),
        ),
        ("empty-both", Vec::new(), Vec::new()),
    ]
}

#[test]
fn every_forced_plan_matches_auto() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let table = KernelTable::auto();
    let params = FesiaParams::auto();
    for seed in 0..12u64 {
        for (label, av, bv) in case_shapes(seed) {
            let a = SegmentedSet::build(&av, &params).unwrap();
            let b = SegmentedSet::build(&bv, &params).unwrap();
            let want = reference_count(&av, &bv);

            fesia_core::set_plan_mode(PlanMode::Auto);
            assert_eq!(
                fesia_core::auto_count_with(&a, &b, &table),
                want,
                "seed={seed} case={label} mode=auto"
            );
            for mode in PlanMode::FORCED {
                fesia_core::set_plan_mode(mode);
                assert_eq!(
                    fesia_core::auto_count_with(&a, &b, &table),
                    want,
                    "seed={seed} case={label} mode={}",
                    mode.name()
                );
                // The non-adaptive entry point obeys the same forcing.
                assert_eq!(
                    fesia_core::intersect_count_with(&a, &b, &table),
                    want,
                    "seed={seed} case={label} mode={} (merge entry)",
                    mode.name()
                );
            }
            fesia_core::set_plan_mode(PlanMode::Auto);
        }
    }
}

/// Container-carrying shapes: run-heavy, clustered, mixed-kind, and a
/// one-sided pair where only one operand has a directory (the planner
/// must decline even under `FESIA_CONTAINER=1`). Every knob setting —
/// auto, forced on, forced off — returns the same count, under every
/// forced `FESIA_PLAN` strategy on top.
#[test]
fn container_knob_settings_agree_on_counts() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let table = KernelTable::auto();
    let params = FesiaParams::auto();
    let mut rng = SplitMix64::new(0xC0A7);
    let (rh_a, rh_b) = run_heavy_pair(40_000, 10_000, 64, &mut rng);
    let (cl_a, cl_b) = clustered_pair(40_000, 10_000, 3, 0.85, &mut rng);
    // Mixed kinds on one side: a run block, a dense window, a sparse tail.
    let mut mx_a: Vec<u32> = (0..6_000).collect();
    mx_a.extend((0..20_000u32).map(|i| (1 << 16) + i * 3));
    mx_a.extend((0..900u32).map(|i| (4 << 16) + i * 50));
    let mx_b: Vec<u32> = (0..40_000u32).map(|i| i * 2).collect();
    let one_sided_b = sorted_set(&mut rng, 2_000, 1 << 18);
    let cases: Vec<(&str, &Vec<u32>, &Vec<u32>)> = vec![
        ("run-heavy", &rh_a, &rh_b),
        ("clustered", &cl_a, &cl_b),
        ("mixed-kinds", &mx_a, &mx_b),
        ("one-sided", &mx_a, &one_sided_b),
    ];
    let saved = fesia_core::container_params();
    for (label, av, bv) in cases {
        let a = SegmentedSet::build(av, &params).unwrap();
        let b = SegmentedSet::build(bv, &params).unwrap();
        if label != "one-sided" {
            assert!(
                a.container().is_some() && b.container().is_some(),
                "case={label}: both sides must carry a directory"
            );
        } else {
            assert!(
                b.container().is_none(),
                "one-sided case must stay one-sided"
            );
        }
        let want = reference_count(av, bv);
        for forced in [None, Some(true), Some(false)] {
            fesia_core::set_container_params(ContainerParams::default().with_forced(forced));
            fesia_core::set_plan_mode(PlanMode::Auto);
            assert_eq!(
                fesia_core::auto_count_with(&a, &b, &table),
                want,
                "case={label} container={forced:?} mode=auto"
            );
            for mode in PlanMode::FORCED {
                fesia_core::set_plan_mode(mode);
                assert_eq!(
                    fesia_core::intersect_count_with(&a, &b, &table),
                    want,
                    "case={label} container={forced:?} mode={}",
                    mode.name()
                );
            }
        }
    }
    fesia_core::set_container_params(saved);
    fesia_core::set_plan_mode(PlanMode::Auto);
}

#[test]
fn forced_plans_agree_on_kway_and_batch_paths() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let table = KernelTable::auto();
    let params = FesiaParams::auto();
    let mut rng = SplitMix64::new(0xFE51A);
    let lists: Vec<Vec<u32>> = (0..4)
        .map(|_| sorted_set(&mut rng, 3_000, 40_000))
        .collect();
    let sets: Vec<SegmentedSet> = lists
        .iter()
        .map(|l| SegmentedSet::build(l, &params).unwrap())
        .collect();
    let refs: Vec<&SegmentedSet> = sets.iter().collect();

    fesia_core::set_plan_mode(PlanMode::Auto);
    let want_kway = fesia_core::kway_count_with(&refs, &table);
    let want_pair = fesia_core::auto_count(&sets[0], &sets[1]);
    for mode in PlanMode::FORCED {
        fesia_core::set_plan_mode(mode);
        assert_eq!(
            fesia_core::kway_count_with(&refs, &table),
            want_kway,
            "k-way under mode={}",
            mode.name()
        );
        assert_eq!(
            fesia_core::auto_count(&sets[0], &sets[1]),
            want_pair,
            "pair under mode={}",
            mode.name()
        );
    }
    fesia_core::set_plan_mode(PlanMode::Auto);
}
