//! Executor equivalence: every parallel entry point, on dedicated pools
//! of 1, 2, and 8 threads, must count exactly what the serial two-phase
//! algorithm counts — on random equal-bitmap inputs, on folded
//! (different-bitmap-size) inputs, and under both dispatch forms of the
//! pipelined knob.
//!
//! Dedicated `Executor::new(n)` pools are used instead of the global one
//! so the worker count under test is pinned regardless of the host's
//! core count.

use fesia_core::{
    batch_count_pairs_on, intersect_count_with, par_intersect_count_on, pipeline_params,
    set_pipeline_params, FesiaParams, KernelTable, PipelineParams, SegmentedSet,
};
use fesia_datagen::SplitMix64;
use fesia_exec::Executor;

fn build(n: usize, universe: u32, seed: u64, params: &FesiaParams) -> (Vec<u32>, SegmentedSet) {
    let mut rng = SplitMix64::new(seed);
    let v = fesia_datagen::sorted_distinct(n, universe, &mut rng);
    let s = SegmentedSet::build(&v, params).unwrap();
    (v, s)
}

/// Random equal-size pair + a folded pair (sizes differ by ~50x, which
/// forces different bitmap sizes under the default density).
fn fixture(params: &FesiaParams) -> Vec<(SegmentedSet, SegmentedSet)> {
    let (_, a) = build(20_000, 400_000, 1, params);
    let (_, b) = build(20_000, 400_000, 2, params);
    let (_, small) = build(700, 400_000, 3, params);
    let (_, large) = build(45_000, 400_000, 4, params);
    assert_ne!(
        small.bitmap_bits(),
        large.bitmap_bits(),
        "need a folded pair"
    );
    vec![(a, b), (small, large)]
}

#[test]
fn par_intersect_matches_serial_on_1_2_8_threads() {
    let params = FesiaParams::auto();
    let table = KernelTable::auto();
    for (i, (a, b)) in fixture(&params).iter().enumerate() {
        let want = intersect_count_with(a, b, &table);
        for n in [1usize, 2, 8] {
            let exec = Executor::new(n);
            assert_eq!(
                par_intersect_count_on(&exec, a, b, n, &table),
                want,
                "pair={i} threads={n}"
            );
            // Executor wider than the requested cap.
            assert_eq!(
                par_intersect_count_on(&exec, b, a, 2.min(n), &table),
                want,
                "pair={i} threads={n} capped"
            );
        }
    }
}

#[test]
fn batch_matches_serial_on_1_2_8_threads() {
    let params = FesiaParams::auto();
    let table = KernelTable::auto();
    let mut sets = Vec::new();
    for (a, b) in fixture(&params) {
        sets.push(a);
        sets.push(b);
    }
    let k = sets.len() as u32;
    let pairs: Vec<(u32, u32)> = (0..k).flat_map(|i| (0..k).map(move |j| (i, j))).collect();
    let want: Vec<usize> = pairs
        .iter()
        .map(|&(i, j)| fesia_core::auto_count_with(&sets[i as usize], &sets[j as usize], &table))
        .collect();
    for n in [1usize, 2, 8] {
        let exec = Executor::new(n);
        let got = batch_count_pairs_on(&exec, &sets, &pairs, &table, n);
        assert_eq!(got, want, "threads={n}");
    }
}

#[test]
fn parallel_paths_agree_under_both_pipeline_forms() {
    let params = FesiaParams::auto();
    let table = KernelTable::auto();
    let saved = pipeline_params();
    let fx = fixture(&params);
    let mut counts_per_form = Vec::new();
    for enabled in [true, false] {
        // min_elements = 0 so the enabled form really dispatches pipelined
        // (the fixture sets are far below the default size floor).
        set_pipeline_params(
            PipelineParams::default()
                .with_enabled(enabled)
                .with_min_elements(0),
        );
        let mut counts = Vec::new();
        for (a, b) in &fx {
            counts.push(intersect_count_with(a, b, &table));
            let exec = Executor::new(8);
            counts.push(par_intersect_count_on(&exec, a, b, 8, &table));
        }
        counts_per_form.push(counts);
    }
    set_pipeline_params(saved);
    assert_eq!(
        counts_per_form[0], counts_per_form[1],
        "pipelined vs interleaved"
    );
}
